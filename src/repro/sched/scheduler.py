"""The disk request queue.

:class:`DiskScheduler` sits between a host (or block device) and the raw
:class:`~repro.disk.disk.Disk`.  Writes are *submitted*; the scheduler
services them -- in policy order -- whenever the queue reaches
``queue_depth``, when idle time is granted (:meth:`drain`), or while a
synchronous read works its way to completion.  Completion times therefore
come from the scheduler, not from serialized ``Disk.write`` calls.

Timing model: the simulator's single clock advances only inside disk
operations, so a "service" is atomic -- positioning, rotation, and
transfer happen back to back.  ``queue_depth=1`` degenerates to servicing
every request at submit time, which issues literally the same
``disk.read``/``disk.write`` call sequence as the unscheduled seed code:
the byte-identity guarantee the figure pins rely on.

Engine mode: under an :class:`~repro.sim.engine.EventEngine` the
scheduler is a *process* (:meth:`attach_engine`).  Hosts enqueue with
:meth:`submit` and wait on the request's ``completed`` signal; the disk
process services work-conservingly whenever requests are pending, each
service occupying a real span of engine time, and completion is an
*event* -- not a lazy drain somebody has to remember to call.  A write
barrier is then just :meth:`wait_drained`.  The synchronous path above
is untouched (and :meth:`barrier` falls back to :meth:`drain` there), so
depth-1 figure identity holds by construction.

Starvation: greedy policies (SATF especially) can pass over a distant
request indefinitely under a hostile arrival stream.  The scheduler
counts how often each pending request is passed over by a *policy*
choice; once the oldest request has been passed ``starvation_bound``
times it is serviced next, policy notwithstanding, and counts freeze
while the aged backlog drains oldest-first -- so no request's pass-over
count ever exceeds the bound.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple, Union

from repro.disk.disk import Disk
from repro.sched.policies import SchedulingPolicy, make_policy
from repro.sim.engine import EventEngine, Process, Signal, Until
from repro.sim.metrics import LatencyHistogram
from repro.sim.stats import Breakdown


class DiskRequest:
    """One queued disk request and its lifecycle timestamps."""

    __slots__ = (
        "op",
        "sector",
        "count",
        "data",
        "charge_scsi",
        "seq",
        "arrival",
        "passes",
        "done",
        "failed",
        "result",
        "breakdown",
        "block_sectors",
        "service_start",
        "completion",
        "completed",
    )

    def __init__(
        self,
        op: str,
        sector: int,
        count: int,
        data: Optional[bytes],
        charge_scsi: bool,
        seq: int,
        arrival: float,
    ) -> None:
        self.op = op
        self.sector = sector
        self.count = count
        self.data = data
        self.charge_scsi = charge_scsi
        #: Block granularity for batched run writes (``None`` for plain
        #: requests): serviced through ``Disk.write_run``.
        self.block_sectors: Optional[int] = None
        self.seq = seq
        self.arrival = arrival
        self.passes = 0
        self.done = False
        self.failed = False
        self.result: Optional[bytes] = None
        self.breakdown: Optional[Breakdown] = None
        self.service_start: Optional[float] = None
        self.completion: Optional[float] = None
        #: Completion event, set by :meth:`DiskScheduler.submit` in engine
        #: mode; ``None`` on the synchronous path.
        self.completed: Optional[Signal] = None

    def __repr__(self) -> str:
        state = "done" if self.done else f"pending(passes={self.passes})"
        return (
            f"DiskRequest(#{self.seq} {self.op} sector={self.sector} "
            f"count={self.count} {state})"
        )


class DiskScheduler:
    """A bounded request queue over one disk, with a pluggable policy.

    Args:
        disk: The disk whose mechanics service (and price) requests.
        policy: Policy name (``fifo``/``scan``/``satf``) or instance.
        queue_depth: Maximum outstanding requests; submitting beyond it
            services requests until the queue fits.  Depth 1 services at
            submit time (the unscheduled seed behaviour).
        starvation_bound: Maximum times a request may be passed over.
    """

    def __init__(
        self,
        disk: Disk,
        policy: Union[str, SchedulingPolicy] = "fifo",
        queue_depth: int = 1,
        starvation_bound: int = 16,
    ) -> None:
        if queue_depth <= 0:
            raise ValueError("queue depth must be positive")
        if starvation_bound <= 0:
            raise ValueError("starvation bound must be positive")
        self.disk = disk
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.queue_depth = queue_depth
        self.starvation_bound = starvation_bound
        #: Pending requests in arrival order (oldest first).
        self._pending: List[DiskRequest] = []
        self._seq = 0
        #: Breakdowns of serviced writes not yet claimed by a caller.
        self._unclaimed = Breakdown()
        self.serviced = 0
        self.busy_seconds = 0.0
        self.max_outstanding = 0
        self.service_times = LatencyHistogram()
        self.response_times = LatencyHistogram()
        # Fail-slow window (set_slow_window): services whose 1-based
        # ordinal falls inside it take `factor` times as long.
        self._slow_factor: Optional[float] = None
        self._slow_after_ops = 0
        self._slow_duration_ops: Optional[int] = None
        self.ops_slowed = 0
        self.slow_extra_seconds = 0.0
        #: ``[first_service_start, last_completion]`` of slowed services.
        self.slow_span: Optional[List[float]] = None
        #: Completion timestamps in service order (degraded-window
        #: throughput accounting for the multi-host report).
        self.completion_times: List[float] = []
        # Engine mode (attach_engine): the scheduler as an event process.
        self._engine: Optional[EventEngine] = None
        self.name = "disk"
        self._submitted: Optional[Signal] = None
        self._drained: Optional[Signal] = None
        self._busy = False
        self._closed = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Requests currently queued (the MetricsDevice overlap probe)."""
        return len(self._pending)

    def write(
        self,
        sector: int,
        count: int = 1,
        data: Optional[bytes] = None,
        charge_scsi: bool = True,
    ) -> DiskRequest:
        """Submit a write; services requests until the queue fits.

        Returns the request object: at depth 1 it is already done (its
        breakdown claimable via :meth:`take_breakdown`); at greater depth
        it completes during later submissions, reads, or a drain.
        """
        req = self._enqueue("write", sector, count, data, charge_scsi)
        while len(self._pending) >= self.queue_depth:
            self.service_one()
        return req

    def write_run(
        self,
        sector: int,
        count: int,
        block_sectors: int,
        data: Optional[bytes] = None,
        charge_scsi: bool = True,
    ) -> DiskRequest:
        """Submit a physically contiguous run of block writes as one
        request, serviced through :meth:`Disk.write_run` (per-block
        timing, batched bookkeeping).  Queue semantics match
        :meth:`write`."""
        req = self._enqueue("write", sector, count, data, charge_scsi)
        req.block_sectors = block_sectors
        while len(self._pending) >= self.queue_depth:
            self.service_one()
        return req

    def read(
        self, sector: int, count: int = 1, charge_scsi: bool = True
    ) -> Tuple[bytes, Breakdown]:
        """Submit a read and service until it completes (reads are
        synchronous: the caller needs the data).  Queued writes may be
        serviced first if the policy prefers them."""
        req = self._enqueue("read", sector, count, None, charge_scsi)
        while not req.done:
            self.service_one()
        assert req.result is not None and req.breakdown is not None
        return req.result, req.breakdown

    def _enqueue(
        self,
        op: str,
        sector: int,
        count: int,
        data: Optional[bytes],
        charge_scsi: bool,
    ) -> DiskRequest:
        # Arrival is host-side time: engine time when attached (the disk's
        # local clock may sit ahead at its free-at frontier), disk clock
        # otherwise (synchronously the two are the same clock).
        arrival = (
            self._engine.now if self._engine is not None
            else self.disk.clock.now
        )
        req = DiskRequest(
            op, sector, count, data, charge_scsi, self._seq, arrival
        )
        self._seq += 1
        self._pending.append(req)
        if len(self._pending) > self.max_outstanding:
            self.max_outstanding = len(self._pending)
        return req

    # ------------------------------------------------------------------
    # Fail-slow injection
    # ------------------------------------------------------------------

    def set_slow_window(
        self,
        factor: float,
        after_ops: int = 0,
        duration_ops: Optional[int] = None,
    ) -> None:
        """Make this device fail-slow for a window of serviced requests.

        Services whose 1-based ordinal lies in ``(after_ops, after_ops +
        duration_ops]`` (open-ended when ``duration_ops`` is ``None``)
        take ``factor`` times their mechanical service time: the surplus
        is real simulated time, so queueing behind the limping device --
        and the response-time tail it grows -- is priced exactly, not
        modelled.  Mirrors the block-layer ``slow`` fault family
        (:class:`~repro.blockdev.interpose.FaultPlan`) one level down,
        for raw-scheduler drivers like the multi-host grid.
        """
        if factor < 1.0:
            raise ValueError("slow factor must be >= 1.0")
        if after_ops < 0:
            raise ValueError("after_ops must be non-negative")
        if duration_ops is not None and duration_ops <= 0:
            raise ValueError("duration_ops must be positive")
        self._slow_factor = factor
        self._slow_after_ops = after_ops
        self._slow_duration_ops = duration_ops

    def _slow_active(self, ordinal: int) -> bool:
        if self._slow_factor is None or ordinal <= self._slow_after_ops:
            return False
        if self._slow_duration_ops is None:
            return True
        return ordinal <= self._slow_after_ops + self._slow_duration_ops

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------

    def service_one(self) -> DiskRequest:
        """Service one pending request, chosen by policy (or by the
        starvation override)."""
        if not self._pending:
            raise RuntimeError("no pending requests to service")
        oldest = self._pending[0]
        if oldest.passes >= self.starvation_bound or len(self._pending) == 1:
            # Aging override: the backlog drains oldest-first and pass
            # counts freeze, so no request's count ever exceeds the bound
            # (a younger request's count never exceeds an older one's,
            # and counts only grow while the oldest is still under it).
            chosen = oldest
        else:
            chosen = self.policy.pick(self._pending, self.disk)
            for req in self._pending:
                if req is not chosen:
                    req.passes += 1
        self._pending.remove(chosen)
        clock = self.disk.clock
        chosen.service_start = clock.now
        try:
            if chosen.op == "read":
                data, breakdown = self.disk.read(
                    chosen.sector, chosen.count, charge_scsi=chosen.charge_scsi
                )
                chosen.result = data
            elif chosen.block_sectors is not None:
                # Run requests fold their per-block charges straight into
                # the unclaimed accumulator: callers may split one logical
                # run across several requests, and only a single shared
                # accumulation keeps the folded totals bit-identical to
                # the per-block scalar path (float adds don't reassociate).
                breakdown = self.disk.write_run(
                    chosen.sector,
                    chosen.count,
                    chosen.block_sectors,
                    chosen.data,
                    charge_scsi=chosen.charge_scsi,
                    accumulate=self._unclaimed,
                )
            else:
                breakdown = self.disk.write(
                    chosen.sector,
                    chosen.count,
                    chosen.data,
                    charge_scsi=chosen.charge_scsi,
                )
        except BaseException:
            # A fault surfaced mid-service (injected error, crash): the
            # request leaves the queue and the exception propagates to
            # whoever triggered the servicing -- at depth 1, the original
            # submitter, exactly as in the unscheduled code.
            chosen.failed = True
            chosen.done = True
            raise
        chosen.breakdown = breakdown
        if self._slow_active(self.serviced + 1):
            extra = (clock.now - chosen.service_start) * (
                self._slow_factor - 1.0
            )
            if extra > 0.0:
                clock.advance(extra)
                self.ops_slowed += 1
                self.slow_extra_seconds += extra
                if self.slow_span is None:
                    self.slow_span = [chosen.service_start, clock.now]
                else:
                    self.slow_span[1] = clock.now
        chosen.completion = clock.now
        chosen.done = True
        if chosen.op == "write" and chosen.block_sectors is None:
            self._unclaimed.add(breakdown)
        self.serviced += 1
        self.completion_times.append(chosen.completion)
        self.busy_seconds += chosen.completion - chosen.service_start
        self.service_times.record(chosen.completion - chosen.service_start)
        self.response_times.record(chosen.completion - chosen.arrival)
        return chosen

    def drain(self) -> Breakdown:
        """Service everything pending (a write barrier / idle signal);
        returns all unclaimed write breakdowns."""
        while self._pending:
            self.service_one()
        return self.take_breakdown()

    def barrier(self) -> Breakdown:
        """Wait until no request is outstanding (the write-ahead barrier
        the virtual-log layers rely on).  Synchronously that *is* a
        drain; under the engine the disk process is already servicing, so
        a process instead waits on the drained event via
        :meth:`wait_drained` and claims breakdowns afterwards."""
        if self._engine is not None:
            raise RuntimeError(
                "synchronous barrier() on an engine-attached scheduler; "
                "yield from wait_drained() instead"
            )
        return self.drain()

    def take_breakdown(self) -> Breakdown:
        """Claim the breakdowns of writes serviced since the last claim."""
        out = self._unclaimed
        self._unclaimed = Breakdown()
        return out

    def discard_pending(self) -> List[DiskRequest]:
        """Drop every pending request without servicing it (power loss:
        queued writes never reached the media)."""
        dropped = self._pending
        self._pending = []
        return dropped

    # ------------------------------------------------------------------
    # Engine mode: the scheduler as an event process
    # ------------------------------------------------------------------

    def attach_engine(self, engine: EventEngine, name: str = "disk") -> Process:
        """Spawn this scheduler as a named process of ``engine``.

        From then on hosts enqueue with :meth:`submit` and wait on each
        request's ``completed`` signal; the process services pending
        requests work-conservingly, each service spanning real engine
        time (recorded as a ``"service"`` interval for exact overlap
        accounting).  The disk's own clock becomes a local free-at
        frontier: advanced to engine time before each service, then ahead
        of it while the closed-form mechanics price the operation, with
        the engine catching up via a timer.
        """
        if self._engine is not None:
            raise RuntimeError(f"scheduler {self.name!r} already attached")
        self._engine = engine
        self.name = name
        self._submitted = engine.signal(f"{name}.submitted")
        self._drained = engine.signal(f"{name}.drained")
        return engine.spawn(self._run(), name=name)

    def submit(
        self,
        op: str,
        sector: int,
        count: int = 1,
        data: Optional[bytes] = None,
        charge_scsi: bool = True,
    ) -> DiskRequest:
        """Enqueue without servicing (engine mode).  Returns the request;
        its ``completed`` signal fires -- with the request as value -- at
        the service's real completion time."""
        if self._engine is None or self._submitted is None:
            raise RuntimeError("submit() requires attach_engine()")
        req = self._enqueue(op, sector, count, data, charge_scsi)
        req.completed = self._engine.signal(
            f"{self.name}.req{req.seq}.completed"
        )
        self._submitted.fire()
        return req

    def wait_drained(self) -> Generator:
        """Engine-mode barrier: a generator to ``yield from`` that
        returns once nothing is queued or in service."""
        if self._drained is None:
            raise RuntimeError("wait_drained() requires attach_engine()")
        while self._pending or self._busy:
            yield self._drained

    def close(self) -> None:
        """End the disk process once its queue drains (run teardown)."""
        self._closed = True
        if self._submitted is not None:
            self._submitted.fire()

    def _run(self) -> Generator:
        engine = self._engine
        assert engine is not None
        assert self._submitted is not None and self._drained is not None
        while True:
            if not self._pending:
                self._drained.fire()
                if self._closed:
                    return
                yield self._submitted
                continue
            start = engine.now
            # Catch the local frontier up to global time, service
            # closed-form (the disk clock runs ahead), then sleep the
            # service duration so engine time matches the completion.
            self.disk.clock.advance_to(start)
            self._busy = True
            req = self.service_one()
            end = self.disk.clock.now
            engine.intervals.note("service", self.name, start, end)
            # Absolute, not a delay: `now + (end - now)` need not equal
            # `end` in floating point, and the depth-1 identity demands
            # engine time land bit-exactly on the closed-form completion.
            # (When the disk clock *is* the engine clock, `end` is
            # already now and this resumes immediately.)
            yield Until(end)
            self._busy = False
            if req.completed is not None:
                req.completed.fire(req)
