"""Batched mechanics pricing over candidate runs (the hot-path engine).

Eager writing's core move is pricing *every* free sector near the head and
picking the cheapest, so the simulator's whole-run throughput is bounded by
how fast ``positioning + rotational wait (+ transfer)`` can be evaluated
for a set of candidates: the eager allocator's free-run sweep, SATF's
pick-next over the pending queue, and the compactor's hole search all ask
the same question N times per decision.  :class:`DiskMechanics` answers it
one candidate at a time through a stack of method calls (seek curve with a
``sqrt``, per-call skew derivation, per-call validation); at tens of
thousands of decisions per simulated second that stack *is* the profile.

:class:`BatchMechanics` precomputes the geometry- and spec-derived pieces
as flat integer/float tables -- the seek curve by cylinder distance, the
angular skew of every track -- and evaluates whole candidate sets in one
pass of a tight loop over those tables.  Every float operation is kept in
the same order as the scalar path, so costs are **bit-for-bit identical**
to composing :class:`DiskMechanics` calls; the scalar path stays as the
oracle (``tests/disk/test_batch_mechanics.py`` pins the two against each
other across random skewed geometries, exactly as
``ReferenceFreeSpaceMap`` pins the bitmap free map).

The rotational term reproduces :meth:`DiskMechanics.rotational_slot`
including its float-boundary normalization: times within a couple of
ulps of a rotation boundary read as slot 0, never as "a hair past it".
"""

from __future__ import annotations

import os
from math import ulp
from typing import List, Optional, Sequence, Tuple

from repro.disk.geometry import DiskGeometry
from repro.disk.specs import DiskSpec

try:  # Optional vector backend -- the pure loops stay the oracle.
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled by REPRO_NO_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: True when the vectorized pricing backend is active.
HAVE_NUMPY = _np is not None

#: Candidate sets smaller than this are priced by the pure loops: the
#: array round-trip costs more than it saves below a few dozen elements.
NUMPY_MIN_BATCH = 32

#: ``(x + _ROUND_MAGIC) - _ROUND_MAGIC`` is round-half-to-even for
#: ``0 <= x < 2**51`` (the sum lands where doubles have ulp 1, and the
#: magic constant is even, so IEEE ties-to-even resolves ties exactly
#: like :func:`round`): two float adds in place of a builtin call, in
#: loops where the call itself is the cost.  Slot values are bounded by
#: sectors-per-track, nowhere near 2**51.
_ROUND_MAGIC = 6755399441055744.0  # 2**52 + 2**51


class BatchMechanics:
    """Table-driven batch pricing for one (spec, geometry) pair.

    The tables are burned in at construction (geometry is immutable):

    * ``seek_by_distance[d]`` -- ``spec.seek_time(d)`` for every cylinder
      distance the geometry can produce;
    * ``skew_by_track[cylinder * tracks_per_cylinder + head]`` -- the
      angular offset of sector 0 on every track.
    """

    def __init__(self, spec: DiskSpec, geometry: DiskGeometry) -> None:
        if geometry.spec is not spec and geometry.spec != spec:
            raise ValueError("geometry was built from a different spec")
        self.spec = spec
        self.geometry = geometry
        self.rotation_time = spec.rotation_time
        self.sector_time = spec.sector_time
        self.sectors_per_track = geometry.sectors_per_track
        self.sectors_per_cylinder = geometry.sectors_per_cylinder
        self.tracks_per_cylinder = geometry.tracks_per_cylinder
        self.head_switch_time = spec.head_switch_time
        #: Clock bound for the snap's cheap proximity pre-gate (see
        #: :meth:`DiskMechanics.rotational_slot`): below it, the snap
        #: tolerance is under 0.125 slots, so ``slot % 1.0`` inside
        #: ``[0.125, 0.875]`` provably cannot snap.
        self._snap_coarse = spec.sector_time * 1e12
        self.seek_by_distance: List[float] = [
            spec.seek_time(d) for d in range(geometry.num_cylinders)
        ]
        tpc = geometry.tracks_per_cylinder
        self.skew_by_track: List[int] = [
            geometry.skew_offset(idx // tpc, idx % tpc)
            for idx in range(geometry.num_cylinders * tpc)
        ]
        if _np is not None:
            self._np_seeks = _np.asarray(self.seek_by_distance)
            self._np_skews = _np.asarray(self.skew_by_track, dtype=_np.int64)

    # ------------------------------------------------------------------
    # Scalar table-backed primitives (bit-equal to DiskMechanics)
    # ------------------------------------------------------------------

    def positioning_time(
        self,
        from_cylinder: int,
        from_head: int,
        to_cylinder: int,
        to_head: int,
    ) -> float:
        """``max(seek, head switch)``, answered from the seek table."""
        distance = to_cylinder - from_cylinder
        if distance < 0:
            distance = -distance
        seek = self.seek_by_distance[distance]
        if from_head != to_head and self.head_switch_time > seek:
            return self.head_switch_time
        return seek

    def angle_of(self, cylinder: int, head: int, sect: int) -> int:
        """Angular slot of a sector, answered from the skew table."""
        angle = sect + self.skew_by_track[
            cylinder * self.tracks_per_cylinder + head
        ]
        n = self.sectors_per_track
        return angle - n if angle >= n else angle

    def rotational_slot(self, now: float) -> float:
        """Platter angle at ``now`` -- same result as the (boundary-fixed)
        :meth:`DiskMechanics.rotational_slot`, without revalidating."""
        rotation = self.rotation_time
        rem = now % rotation
        n = self.sectors_per_track
        if rem > 4.5e-308 and rem > now * 1e-15:
            # Conservatively past the zero-boundary snap (2 * ulp(now)
            # never exceeds now * 2**-51): the ordinary path, sans ulp().
            frac = rem / rotation
            if frac >= 1.0:
                return 0.0
            slot = frac * n
            m = slot % 1.0
            if m < 0.125 or m > 0.875 or now > self._snap_coarse:
                nearest = round(slot)
                if nearest != slot and abs(rem - nearest * self.sector_time) <= now * 2e-14:
                    return 0.0 if nearest == n else float(nearest)
            return slot
        if rem <= 0.0 or rem <= 2.0 * ulp(now):
            return 0.0
        frac = rem / rotation
        if frac >= 1.0:
            return 0.0
        slot = frac * n
        nearest = (slot + _ROUND_MAGIC) - _ROUND_MAGIC
        d = slot - nearest
        if -0.125 < d < 0.125 or now > self._snap_coarse:
            if nearest != slot and abs(rem - nearest * self.sector_time) <= now * 2e-14:
                return 0.0 if nearest == n else nearest
        return slot

    def position_and_arrival(
        self,
        now: float,
        head_cyl: int,
        head_head: int,
        cylinder: int,
        head: int,
    ) -> Tuple[float, float]:
        """``(positioning_time, arrival_slot)`` for moving the arm to one
        track: the fused form of ``mechanics.positioning_time`` +
        ``disk.slot_after(positioning)`` the allocator's track queries
        pay per candidate track."""
        positioning = self.positioning_time(head_cyl, head_head, cylinder, head)
        return positioning, self.rotational_slot(now + positioning)

    # ------------------------------------------------------------------
    # Vectorized backend (bit-equal to the pure loops)
    # ------------------------------------------------------------------

    def _slots_np(self, t):
        """Vectorized :meth:`rotational_slot` over an array of times.

        Every elementwise op mirrors the scalar path exactly: ``np.mod``
        is the same sign-adjusted ``fmod`` as ``float.__mod__`` for
        positive operands, ``np.rint`` rounds half to even like
        ``round``, and ``np.spacing`` is ``math.ulp`` for non-negative
        floats -- so the results are bit-for-bit the scalar answers.
        """
        np = _np
        rotation = self.rotation_time
        n = self.sectors_per_track
        sector_time = self.sector_time
        rem = np.mod(t, rotation)
        frac = rem / rotation
        base = frac * n
        nearest = np.rint(base)
        snap = (nearest != base) & (
            np.abs(rem - nearest * sector_time) <= t * 2e-14
        )
        slot = np.where(snap, np.where(nearest == n, 0.0, nearest), base)
        slot = np.where(frac >= 1.0, 0.0, slot)
        fast = (rem > 4.5e-308) & (rem > t * 1e-15)
        tiny = (rem <= 0.0) | (rem <= 2.0 * np.spacing(t))
        return np.where(~fast & tiny, 0.0, slot)

    def _price_candidates_np(
        self,
        now: float,
        head_cyl: int,
        head_head: int,
        candidates: Sequence[int],
        extra_lead: Optional[Sequence[float]],
        transfer_sectors: int,
    ) -> List[float]:
        np = _np
        n = self.sectors_per_track
        sector_time = self.sector_time
        tpc = self.tracks_per_cylinder
        switch = self.head_switch_time
        sectors = np.asarray(candidates, dtype=np.int64)
        track = sectors // n
        sect = sectors - track * n
        cylinder = track // tpc
        head = track - cylinder * tpc
        positioning = self._np_seeks[np.abs(cylinder - head_cyl)]
        positioning = np.where(
            (head != head_head) & (switch > positioning), switch, positioning
        )
        if extra_lead is None:
            lead = positioning
            t = now + positioning
        else:
            extra = np.asarray(extra_lead, dtype=np.float64)
            lead = extra + positioning
            t = (now + extra) + positioning
        slot = self._slots_np(t)
        angle = sect + self._np_skews[track]
        angle = np.where(angle >= n, angle - n, angle)
        cost = lead + np.mod(angle - slot, n) * sector_time
        if transfer_sectors:
            cost = cost + transfer_sectors * sector_time
        return cost.tolist()

    def _price_track_arrivals_np(
        self,
        now: float,
        head_cyl: int,
        head_head: int,
        tracks: Sequence[Tuple[int, int]],
    ) -> List[Tuple[float, float]]:
        np = _np
        switch = self.head_switch_time
        pairs = np.asarray(tracks, dtype=np.int64)
        cylinder = pairs[:, 0]
        head = pairs[:, 1]
        positioning = self._np_seeks[np.abs(cylinder - head_cyl)]
        positioning = np.where(
            (head != head_head) & (switch > positioning), switch, positioning
        )
        slot = self._slots_np(now + positioning)
        return list(zip(positioning.tolist(), slot.tolist()))

    # ------------------------------------------------------------------
    # Batch pricing
    # ------------------------------------------------------------------

    def price_candidates(
        self,
        now: float,
        head_cyl: int,
        head_head: int,
        candidates: Sequence[int],
        extra_lead: Optional[Sequence[float]] = None,
        transfer_sectors: int = 0,
    ) -> List[float]:
        """Price every candidate in one pass.

        Args:
            now: Current simulated time (the platter position derives
                from it).
            head_cyl, head_head: Where the arm is.
            candidates: Linear sector numbers; each is priced as the
                start of an access.
            extra_lead: Optional per-candidate lead time charged *before*
                positioning (the SCSI overhead of a host-issued request).
                The lead delays the platter exactly as the service path
                does: the rotational wait is measured at
                ``(now + extra) + positioning``.
            transfer_sectors: When nonzero, add the media transfer time
                for that many sectors to every cost.

        Returns:
            ``costs[i]`` = ``extra_lead[i] + positioning + rotational
            wait (+ transfer)`` for ``candidates[i]``, bit-for-bit equal
            to composing the scalar mechanics calls in service order.
        """
        if _np is not None and len(candidates) >= NUMPY_MIN_BATCH:
            return self._price_candidates_np(
                now, head_cyl, head_head, candidates, extra_lead,
                transfer_sectors,
            )
        n = self.sectors_per_track
        rotation = self.rotation_time
        sector_time = self.sector_time
        tpc = self.tracks_per_cylinder
        seeks = self.seek_by_distance
        skews = self.skew_by_track
        switch = self.head_switch_time
        transfer = transfer_sectors * sector_time if transfer_sectors else 0.0
        _ulp = ulp
        coarse = self._snap_coarse
        costs: List[float] = []
        append = costs.append
        # Two copies of the loop body so the common no-lead case pays no
        # per-candidate branch or indexing; both inline rotational_slot
        # (the call itself is measurable at this call rate) with the op
        # order kept identical.  ``rem > t * 1e-15`` conservatively
        # clears the boundary snap without the ulp() call: for normal t
        # (guaranteed by ``rem > 4.5e-308``, since t >= rem), 2 * ulp(t)
        # never exceeds t * 2**-51 < t * 1e-15, so any larger remainder
        # takes the ordinary path with bit-identical results.  Subnormal
        # times (where ulp stops scaling with t) fall through to the
        # exact form.  The interior-boundary snap sits behind the same
        # proximity pre-gate as DiskMechanics.rotational_slot -- below
        # ``coarse`` the snap tolerance cannot reach 0.125 slots, so a
        # slot further than that from an integer provably cannot snap --
        # with the nearest integer found by the _ROUND_MAGIC add/sub
        # pair instead of a round() call.  Most candidates skip the
        # exact ulp-scale test entirely, bit-identically.
        if extra_lead is None:
            for sector in candidates:
                track = sector // n
                sect = sector - track * n
                cylinder = track // tpc
                distance = cylinder - head_cyl
                if distance < 0:
                    distance = -distance
                positioning = seeks[distance]
                if track - cylinder * tpc != head_head and switch > positioning:
                    positioning = switch
                t = now + positioning
                rem = t % rotation
                if rem > 4.5e-308 and rem > t * 1e-15:
                    frac = rem / rotation
                    if frac >= 1.0:
                        slot = 0.0
                    else:
                        slot = frac * n
                        nearest = (slot + _ROUND_MAGIC) - _ROUND_MAGIC
                        d = slot - nearest
                        if -0.125 < d < 0.125 or t > coarse:
                            if nearest != slot and abs(
                                rem - nearest * sector_time
                            ) <= t * 2e-14:
                                slot = 0.0 if nearest == n else nearest
                elif rem <= 0.0 or rem <= 2.0 * _ulp(t):
                    slot = 0.0
                else:
                    frac = rem / rotation
                    if frac >= 1.0:
                        slot = 0.0
                    else:
                        slot = frac * n
                        nearest = (slot + _ROUND_MAGIC) - _ROUND_MAGIC
                        d = slot - nearest
                        if -0.125 < d < 0.125 or t > coarse:
                            if nearest != slot and abs(
                                rem - nearest * sector_time
                            ) <= t * 2e-14:
                                slot = 0.0 if nearest == n else nearest
                angle = sect + skews[track]
                if angle >= n:
                    angle -= n
                cost = positioning + ((angle - slot) % n) * sector_time
                if transfer:
                    cost += transfer
                append(cost)
            return costs
        for i, sector in enumerate(candidates):
            track = sector // n
            sect = sector - track * n
            cylinder = track // tpc
            distance = cylinder - head_cyl
            if distance < 0:
                distance = -distance
            positioning = seeks[distance]
            if track - cylinder * tpc != head_head and switch > positioning:
                positioning = switch
            extra = extra_lead[i]
            lead = extra + positioning
            t = (now + extra) + positioning
            rem = t % rotation
            if rem > 4.5e-308 and rem > t * 1e-15:
                frac = rem / rotation
                if frac >= 1.0:
                    slot = 0.0
                else:
                    slot = frac * n
                    nearest = round(slot)
                    if nearest != slot and abs(
                        rem - nearest * sector_time
                    ) <= t * 2e-14:
                        slot = 0.0 if nearest == n else float(nearest)
            elif rem <= 0.0 or rem <= 2.0 * _ulp(t):
                slot = 0.0
            else:
                frac = rem / rotation
                if frac >= 1.0:
                    slot = 0.0
                else:
                    slot = frac * n
                    nearest = round(slot)
                    if nearest != slot and abs(
                        rem - nearest * sector_time
                    ) <= t * 2e-14:
                        slot = 0.0 if nearest == n else float(nearest)
            angle = sect + skews[track]
            if angle >= n:
                angle -= n
            cost = lead + ((angle - slot) % n) * sector_time
            if transfer:
                cost += transfer
            append(cost)
        return costs

    def price_track_arrivals(
        self,
        now: float,
        head_cyl: int,
        head_head: int,
        tracks: Sequence[Tuple[int, int]],
    ) -> List[Tuple[float, float]]:
        """``(positioning_time, arrival_slot)`` for each ``(cylinder,
        head)`` in one pass -- the compactor's hole search and the
        allocator's cylinder sweep price candidate *tracks* this way
        before asking the free map for the nearest run on the winners."""
        if _np is not None and len(tracks) >= NUMPY_MIN_BATCH:
            return self._price_track_arrivals_np(now, head_cyl, head_head, tracks)
        n = self.sectors_per_track
        rotation = self.rotation_time
        sector_time = self.sector_time
        seeks = self.seek_by_distance
        switch = self.head_switch_time
        _ulp = ulp
        coarse = self._snap_coarse
        out: List[Tuple[float, float]] = []
        append = out.append
        for cylinder, head in tracks:
            distance = cylinder - head_cyl
            if distance < 0:
                distance = -distance
            positioning = seeks[distance]
            if head != head_head and switch > positioning:
                positioning = switch
            t = now + positioning
            rem = t % rotation
            if rem > 4.5e-308 and rem > t * 1e-15:
                frac = rem / rotation
                if frac >= 1.0:
                    slot = 0.0
                else:
                    slot = frac * n
                    nearest = round(slot)
                    if nearest != slot and abs(
                        rem - nearest * sector_time
                    ) <= t * 2e-14:
                        slot = 0.0 if nearest == n else float(nearest)
            elif rem <= 0.0 or rem <= 2.0 * _ulp(t):
                slot = 0.0
            else:
                frac = rem / rotation
                if frac >= 1.0:
                    slot = 0.0
                else:
                    slot = frac * n
                    nearest = round(slot)
                    if nearest != slot and abs(
                        rem - nearest * sector_time
                    ) <= t * 2e-14:
                        slot = 0.0 if nearest == n else float(nearest)
            append((positioning, slot))
        return out
