"""VLFS: the log-structured file system on the virtual log (Section 3.3).

The paper designs -- but does not implement -- a variant of LFS for the
programmable disk: data, inode, and inode-map blocks are all eagerly
written near the head (no physically contiguous segments), and *only the
inode-map blocks* belong to the virtual log, "essentially adding a level
of indirection to the indirection map".  Because every block lands near
the head individually, small synchronous writes are fast like the VLD's,
while the asynchronous buffering benefits of LFS are retained; the LFS
cleaner is replaced by (optional) free-space compaction.

This package builds that design.
"""

from repro.vlfs.vlfs import VLFS

__all__ = ["VLFS"]
