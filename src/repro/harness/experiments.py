"""One entry point per table/figure of the paper's evaluation.

Every function returns a plain dict so benchmarks and tests can assert on
the *shape* of the results (who wins, by what factor, where crossovers
fall) without depending on formatting.  ``scale`` trades fidelity for
runtime: 1.0 reproduces the paper's workload sizes; smaller values shrink
file counts / update counts proportionally (used by the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.blockdev.interpose import MetricsDevice, find_layer
from repro.disk.specs import DISKS, HP97560, ST19101
from repro.harness.configs import STACKS, StackConfig, build_stack, utilization_of
from repro.harness.runner import simulate_locate_free, simulate_track_fill
from repro.models.compactor import average_latency_closed_form
from repro.models.cylinder import cylinder_expected_latency
from repro.sim.stats import COMPONENTS
from repro.workloads.bursts import run_bursts
from repro.workloads.largefile import run_large_file
from repro.workloads.random_update import prepare_file, run_random_updates
from repro.workloads.smallfile import run_small_file

_MB = 1 << 20


# ======================================================================
# Table 1
# ======================================================================

def table1() -> Dict[str, Dict[str, float]]:
    """Disk parameters (Table 1) -- straight from the specs."""
    result = {}
    for spec in (HP97560, ST19101):
        result[spec.name] = {
            "sectors_per_track": spec.sectors_per_track,
            "tracks_per_cylinder": spec.tracks_per_cylinder,
            "head_switch_ms": spec.head_switch_time * 1e3,
            "min_seek_ms": spec.min_seek_time * 1e3,
            "rpm": spec.rpm,
            "scsi_overhead_ms": spec.scsi_overhead * 1e3,
        }
    return result


# ======================================================================
# Figure 1: time to locate a free sector vs free space
# ======================================================================

def figure1(
    fractions: Optional[Sequence[float]] = None,
    trials: int = 300,
    seed: int = 1,
) -> Dict[str, Dict[str, List[float]]]:
    """Model vs simulation of free-sector locate time, both disks."""
    if fractions is None:
        fractions = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    result: Dict[str, Dict[str, List[float]]] = {}
    for spec in (HP97560, ST19101):
        model = [cylinder_expected_latency(spec, p) for p in fractions]
        simulated = [
            simulate_locate_free(spec, p, trials=trials, seed=seed)
            for p in fractions
        ]
        result[spec.name] = {
            "free_fraction": list(fractions),
            "model_seconds": model,
            "simulated_seconds": simulated,
        }
    return result


# ======================================================================
# Figure 2: latency vs track-switch threshold
# ======================================================================

def figure2(
    thresholds: Optional[Sequence[float]] = None,
    trials: int = 40,
    seed: int = 2,
) -> Dict[str, Dict[str, List[float]]]:
    """Model vs simulation of the compactor-assisted track-fill regime.

    ``thresholds`` are the fraction of free sectors *reserved* per track
    before switching (the paper's x-axis; high = frequent switches).
    """
    if thresholds is None:
        thresholds = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    result: Dict[str, Dict[str, List[float]]] = {}
    for spec in (HP97560, ST19101):
        n = spec.sectors_per_track
        model = []
        simulated = []
        for threshold in thresholds:
            m = max(0, min(n - 1, int(round(threshold * n))))
            model.append(
                average_latency_closed_form(
                    n, m, spec.head_switch_time, spec.sector_time
                )
            )
            simulated.append(
                simulate_track_fill(spec, threshold, trials=trials, seed=seed)
            )
        result[spec.name] = {
            "threshold": list(thresholds),
            "model_seconds": model,
            "simulated_seconds": simulated,
        }
    return result


# ======================================================================
# Figure 6: small-file create/read/delete
# ======================================================================

def figure6(
    num_files: int = 1500,
    disk_name: str = "st19101",
    host_name: str = "sparc10",
) -> Dict[str, Dict[str, float]]:
    """Per-stack phase times, plus normalisation to UFS-on-regular."""
    raw: Dict[str, Dict[str, float]] = {}
    for name, base in STACKS.items():
        config = base.with_platform(disk_name, host_name)
        fs, _disk, _device = build_stack(config)
        outcome = run_small_file(fs, num_files=num_files)
        raw[name] = {
            "create": outcome.create_seconds,
            "read": outcome.read_seconds,
            "delete": outcome.delete_seconds,
        }
    baseline = raw["ufs-regular"]
    normalized = {
        name: {
            phase: baseline[phase] / seconds if seconds > 0 else float("inf")
            for phase, seconds in phases.items()
        }
        for name, phases in raw.items()
    }
    return {"seconds": raw, "normalized": normalized}


# ======================================================================
# Figure 7: large-file bandwidths
# ======================================================================

def figure7(
    file_mb: float = 10.0,
    disk_name: str = "st19101",
    host_name: str = "sparc10",
) -> Dict[str, Dict[str, float]]:
    """Per-stack bandwidths for the six large-file phases (MB/s)."""
    result: Dict[str, Dict[str, float]] = {}
    for name, base in STACKS.items():
        config = base.with_platform(disk_name, host_name)
        fs, _disk, _device = build_stack(config)
        outcome = run_large_file(
            fs,
            file_bytes=int(file_mb * _MB),
            include_sync_phase=config.fs_type == "ufs",
        )
        result[name] = dict(outcome.bandwidths)
    return result


# ======================================================================
# Figure 8: random synchronous updates vs disk utilization
# ======================================================================

def figure8(
    file_mbs: Optional[Sequence[float]] = None,
    updates: int = 300,
    warmup: int = 100,
    lfs_updates: int = 2500,
    lfs_warmup: int = 2000,
    disk_name: str = "st19101",
    host_name: str = "sparc10",
) -> Dict[str, Dict[str, List[float]]]:
    """Latency-vs-utilization curves for the three Figure 8 systems.

    The LFS-with-NVRAM runs need enough updates to overflow the 6.1 MB
    buffer repeatedly (the steady state the paper measures), hence the
    larger ``lfs_updates``/``lfs_warmup`` defaults.
    """
    if file_mbs is None:
        file_mbs = [1, 2, 4, 6, 8, 10, 12, 14, 16, 17, 18]
    systems = {
        "ufs-regular": StackConfig(
            "ufs-regular", "ufs", "regular", disk_name, host_name
        ),
        "ufs-vld": StackConfig(
            "ufs-vld", "ufs", "vld", disk_name, host_name
        ),
        "lfs-nvram-regular": StackConfig(
            "lfs-nvram-regular", "lfs", "regular", disk_name, host_name,
            nvram=True,
        ),
    }
    result: Dict[str, Dict[str, List[float]]] = {}
    for name, config in systems.items():
        utilizations: List[float] = []
        latencies: List[float] = []
        for file_mb in file_mbs:
            if config.fs_type == "lfs":
                point = _figure8_point(
                    config, file_mb, lfs_updates, lfs_warmup
                )
            else:
                point = _figure8_point(config, file_mb, updates, warmup)
            if point is None:
                continue
            utilization, latency = point
            utilizations.append(utilization)
            latencies.append(latency)
        result[name] = {
            "utilization": utilizations,
            "latency_ms": [v * 1e3 for v in latencies],
        }
    return result


def _figure8_point(
    config: StackConfig, file_mb: float, updates: int, warmup: int
):
    from repro.fs.api import NoSpace

    fs, _disk, device = build_stack(config)
    file_bytes = int(file_mb * _MB)
    try:
        prepare_file(fs, "/target", file_bytes)
        recorder = run_random_updates(
            fs, "/target", file_bytes, updates, warmup=warmup
        )
    except NoSpace:
        return None
    return utilization_of(fs, device), recorder.mean()


# ======================================================================
# Table 2 and Figure 9: technology trends and latency breakdown
# ======================================================================

PLATFORMS = (
    ("hp97560", "sparc10"),
    ("st19101", "sparc10"),
    ("st19101", "ultra170"),
)


def table2(
    utilization: float = 0.8,
    updates: int = 300,
    warmup: int = 100,
    compact_seconds: float = 20.0,
    from_metrics: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Update-in-place vs virtual-log gap across platforms (Table 2),
    with the Figure 9 component breakdowns of the same runs.

    With ``from_metrics`` (the default) each stack carries a
    :class:`~repro.blockdev.interpose.MetricsDevice` and the component
    breakdown comes from its per-component latency histograms -- the
    device-visible parts measured at the device boundary, host time
    inferred from the clock gaps between device operations -- rather
    than from the per-call breakdowns the workload accumulates.
    """
    result: Dict[str, Dict[str, float]] = {}
    for disk_name, host_name in PLATFORMS:
        spec = DISKS[disk_name]
        capacity = (
            spec.sim_cylinders
            * spec.tracks_per_cylinder
            * spec.sectors_per_track
            * spec.sector_bytes
        )
        file_bytes = int(utilization * capacity)
        latencies = {}
        fractions = {}
        for device_type in ("regular", "vld"):
            config = StackConfig(
                f"ufs-{device_type}", "ufs", device_type, disk_name,
                host_name, metrics=from_metrics,
            )
            fs, _disk, device = build_stack(config)
            metrics = find_layer(device, MetricsDevice)
            prepare_file(fs, "/target", file_bytes)
            # Footnote 1 of the paper: "The VLD latency in this case is
            # measured immediately after running a compactor."  Idle time
            # lets the compactor consolidate free space into empty tracks
            # (a no-op on the regular disk).
            device.idle(compact_seconds)
            recorder = run_random_updates(
                fs, "/target", file_bytes, updates, warmup=warmup,
                on_measure_start=(
                    metrics.reset if metrics is not None else None
                ),
            )
            latencies[device_type] = recorder.mean()
            fractions[device_type] = (
                metrics.component_fractions()
                if metrics is not None
                else recorder.component_fractions()
            )
        key = f"{disk_name}+{host_name}"
        entry: Dict[str, float] = {
            "update_in_place_ms": latencies["regular"] * 1e3,
            "virtual_log_ms": latencies["vld"] * 1e3,
            "speedup": latencies["regular"] / latencies["vld"],
        }
        for component in COMPONENTS:
            entry[f"regular_{component}"] = fractions["regular"][component]
            entry[f"vld_{component}"] = fractions["vld"][component]
        result[key] = entry
    return result


def figure9(
    utilization: float = 0.8, updates: int = 300, warmup: int = 100
) -> Dict[str, Dict[str, float]]:
    """Latency breakdowns (same runs as Table 2, reshaped per Figure 9)."""
    table = table2(utilization, updates, warmup)
    result: Dict[str, Dict[str, float]] = {}
    for platform, entry in table.items():
        for device in ("regular", "vld"):
            key = f"{platform}/{device}"
            result[key] = {
                component: entry[f"{device}_{component}"]
                for component in COMPONENTS
            }
            result[key]["total_ms"] = entry[
                "update_in_place_ms" if device == "regular" else "virtual_log_ms"
            ]
    return result


# ======================================================================
# Figures 10 and 11: the value of idle time
# ======================================================================

def figure10(
    burst_kbs: Optional[Sequence[int]] = None,
    idle_seconds: Optional[Sequence[float]] = None,
    utilization: float = 0.8,
    bursts: int = 6,
    disk_name: str = "st19101",
    host_name: str = "sparc10",
) -> Dict[str, Dict[str, List[float]]]:
    """LFS (with NVRAM) latency vs idle-interval length (Figure 10)."""
    if burst_kbs is None:
        burst_kbs = [128, 256, 504, 1008, 2016, 4032]
    if idle_seconds is None:
        idle_seconds = [0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
    config = StackConfig(
        "lfs-nvram-regular", "lfs", "regular", disk_name, host_name,
        nvram=True,
    )
    return _idle_sweep(
        config, burst_kbs, idle_seconds, utilization, bursts
    )


def figure11(
    burst_kbs: Optional[Sequence[int]] = None,
    idle_seconds: Optional[Sequence[float]] = None,
    utilization: float = 0.8,
    bursts: int = 6,
    disk_name: str = "st19101",
    host_name: str = "sparc10",
) -> Dict[str, Dict[str, List[float]]]:
    """UFS on the VLD latency vs idle-interval length (Figure 11)."""
    if burst_kbs is None:
        burst_kbs = [128, 256, 512, 1024, 2048, 4096]
    if idle_seconds is None:
        idle_seconds = [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6]
    config = StackConfig(
        "ufs-vld", "ufs", "vld", disk_name, host_name
    )
    return _idle_sweep(
        config, burst_kbs, idle_seconds, utilization, bursts
    )


def _idle_sweep(
    config: StackConfig,
    burst_kbs: Sequence[int],
    idle_seconds: Sequence[float],
    utilization: float,
    bursts: int,
) -> Dict[str, Dict[str, List[float]]]:
    spec = DISKS[config.disk_name]
    capacity = (
        spec.sim_cylinders
        * spec.tracks_per_cylinder
        * spec.sectors_per_track
        * spec.sector_bytes
    )
    file_bytes = int(utilization * capacity)
    result: Dict[str, Dict[str, List[float]]] = {}
    for burst_kb in burst_kbs:
        latencies: List[float] = []
        for idle in idle_seconds:
            fs, _disk, _device = build_stack(config)
            prepare_file(fs, "/target", file_bytes)
            recorder = run_bursts(
                fs,
                "/target",
                file_bytes,
                burst_bytes=burst_kb << 10,
                idle_seconds=idle,
                bursts=bursts,
            )
            latencies.append(recorder.mean())
        result[f"{burst_kb}K"] = {
            "idle_seconds": list(idle_seconds),
            "latency_ms": [v * 1e3 for v in latencies],
        }
    return result
