"""Crash-point sweep: kill the VLD at *every* physical write of a
workload and verify recovery (Section 3.2's atomicity/durability claims).

The :class:`~repro.blockdev.interpose.DiskFaultInjector` sits below the
logical layer, so the crash lands inside the VLD's internal data-write /
map-append sequence -- between the eager data write and the commit, on
the commit itself, or on a torn data write.  After every crash point:

* every acknowledged logical write reads back its exact payload;
* the interrupted write is atomic: its block reads entirely-old or
  entirely-new, never a mixture;
* the rebuilt indirection map is stable -- a second crash + recovery
  reproduces it identically.
"""

import random

import pytest

from repro.blockdev.interpose import DeviceCrashed, DiskFaultInjector
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.vlog.vld import VirtualLogDisk

_BLOCK = 4096
_WRITES = 12
_LBA_SPACE = 16  # small, to exercise rewrites (displacement + recycling)


def _payload(step: int, lba: int) -> bytes:
    return bytes([(37 * step + lba) % 251 + 1]) * _BLOCK


def _run_workload(vld):
    """Replay the deterministic workload to completion."""
    rng = random.Random(0xC4A5)
    for step in range(_WRITES):
        lba = rng.randrange(_LBA_SPACE)
        vld.write_block(lba, _payload(step, lba))


def _clean_run_write_count() -> int:
    disk = Disk(ST19101, num_cylinders=2)
    vld = VirtualLogDisk(disk)
    before = disk.writes
    _run_workload(vld)
    return disk.writes - before


def _sweep_points():
    return range(1, _clean_run_write_count() + 1)


@pytest.mark.parametrize("crash_at", list(_sweep_points()))
def test_recovery_is_consistent_at_every_crash_point(crash_at):
    disk = Disk(ST19101, num_cylinders=2)
    vld = VirtualLogDisk(disk)
    injector = DiskFaultInjector(
        crash_after_writes=crash_at, torn=True
    ).install(disk)

    rng = random.Random(0xC4A5)
    acked = {}
    in_flight = None
    crashed = False
    for step in range(_WRITES):
        lba = rng.randrange(_LBA_SPACE)
        payload = _payload(step, lba)
        try:
            vld.write_block(lba, payload)
        except DeviceCrashed:
            in_flight = (lba, payload, acked.get(lba))
            crashed = True
            break
        acked[lba] = payload
    injector.uninstall(disk)
    assert crashed, "sweep point beyond the workload's write count"

    vld.crash()
    outcome = vld.recover()
    assert outcome.scanned  # no power-down record was ever written

    # Durability: everything acknowledged reads back exactly.
    for lba, payload in acked.items():
        data, _ = vld.read_block(lba)
        assert data == payload, f"acked write to lba {lba} lost"

    # Atomicity: the interrupted write is all-old or all-new.
    lba, new, old = in_flight
    if lba not in acked:
        data, _ = vld.read_block(lba)
        before = old if old is not None else bytes(_BLOCK)
        assert data in (before, new), (
            f"torn state visible at lba {lba} after recovery"
        )

    vld.vlog.check_invariants()

    # Stability: a second crash + recovery rebuilds the identical map.
    first_map = dict(vld.imap.items())
    vld.crash()
    vld.recover()
    assert dict(vld.imap.items()) == first_map


def test_sweep_covers_multiple_writes_per_logical_write():
    # The VLD pays at least a data write and a map append per logical
    # write, so the sweep has strictly more crash points than the
    # workload has writes -- i.e. it really does land *inside* the
    # internal sequences.
    assert _clean_run_write_count() > _WRITES
