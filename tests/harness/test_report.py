from repro.harness.report import format_table, series_to_csv


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.5], ["long-name", 20]],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "1.500" in text  # floats get 3 decimals
        assert "20" in text

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_no_title(self):
        text = format_table(["a"], [[1]])
        assert not text.startswith("\n")


class TestSeriesToCsv:
    def test_columns(self):
        csv = series_to_csv({"x": [1, 2], "y": [0.5, 0.25]})
        lines = csv.splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,0.5"
        assert lines[2] == "2,0.25"

    def test_ragged_series_padded(self):
        csv = series_to_csv({"x": [1, 2, 3], "y": [9]})
        lines = csv.splitlines()
        assert lines[2] == "2,"

    def test_empty(self):
        assert series_to_csv({}) == ""


class TestHarnessCli:
    def test_list(self, capsys):
        from repro.harness.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure8" in out and "table2" in out

    def test_unknown_experiment(self, capsys):
        from repro.harness.__main__ import main

        assert main(["figure99"]) == 2

    def test_runs_table1(self, capsys):
        from repro.harness.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "HP97560" in out
        assert "256" in out
