"""Figure 8: random 4 KB synchronous updates vs disk utilization, for
UFS/regular, UFS/VLD, and LFS-with-NVRAM/regular."""

from repro.harness import experiments
from repro.harness.report import format_table

from .conftest import full_scale, run_once


def test_figure8(benchmark):
    if full_scale():
        file_mbs = [1, 2, 4, 6, 8, 10, 12, 14, 16, 17, 18, 19]
        updates, warmup = 400, 150
        lfs_updates, lfs_warmup = 4000, 2500
    else:
        file_mbs = [2, 6, 10, 14, 17, 19]
        updates, warmup = 150, 50
        lfs_updates, lfs_warmup = 2500, 1500

    result = run_once(
        benchmark,
        lambda: experiments.figure8(
            file_mbs=file_mbs,
            updates=updates,
            warmup=warmup,
            lfs_updates=lfs_updates,
            lfs_warmup=lfs_warmup,
        ),
    )

    print()
    for system, series in result.items():
        rows = [
            [f"{u:.0%}", latency]
            for u, latency in zip(
                series["utilization"], series["latency_ms"]
            )
        ]
        print(
            format_table(
                ["utilization", "latency (ms/4KB)"],
                rows,
                title=f"Figure 8: {system}",
            )
        )
        print()

    ufs_regular = result["ufs-regular"]["latency_ms"]
    ufs_vld = result["ufs-vld"]["latency_ms"]
    lfs = result["lfs-nvram-regular"]["latency_ms"]

    # Update-in-place pays seek + half-rotation everywhere: high and flat.
    assert min(ufs_regular) > 4.0
    assert max(ufs_regular) < 2.5 * min(ufs_regular)
    # Eager writing stays far below update-in-place at every utilization.
    for vld, regular in zip(ufs_vld, ufs_regular):
        assert vld < regular / 1.5
    # ... with only a modest rise at high utilization.
    assert ufs_vld[-1] < 4 * ufs_vld[0]
    # LFS: excellent inside NVRAM, cleaner-dominated beyond it.
    assert lfs[0] < 1.0
    assert max(lfs) > 4 * lfs[0]
    # At the top end the cleaner costs more than eager writing ever does
    # (the paper's crossover; ours sits at higher utilization -- see
    # EXPERIMENTS.md).
    assert max(lfs) > min(ufs_vld)
