"""A simulated clock measured in seconds.

The clock only moves forward.  Disk mechanics, SCSI command processing, and
host CPU overheads all advance it; experiment harnesses read elapsed simulated
time to report latencies and bandwidths exactly the way the paper's modified
Solaris kernel reported wall-clock time.

Since the event-core refactor a clock can play two roles:

* **View over engine time.**  When an :class:`~repro.sim.engine.EventEngine`
  adopts (or creates) a clock, the engine owns the timeline and the clock
  is how the rest of the codebase reads it: firing an event advances the
  bound clock to the event's time.  :meth:`bind` records the association.
* **Local frontier.**  A clock not bound to an engine -- e.g. a
  :class:`~repro.disk.disk.Disk`'s own clock under the multi-host driver
  -- marks when that component is next free.  Synchronous mechanics code
  advances it closed-form past the engine's global view ("local
  lookahead"); the owning process then yields a timer for the difference
  so the engine catches up.  Either way the mechanics code is unchanged:
  rotational position stays a pure function of ``clock.now``.
"""

from __future__ import annotations

from typing import Any, Optional


class SimClock:
    """Monotonically increasing simulated time, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)
        self._engine: Optional[Any] = None

    def bind(self, engine: Any) -> None:
        """Mark this clock as the time view of ``engine`` (informational:
        the engine advances the clock; consumers may check :attr:`engine`
        to find the event loop that drives them)."""
        self._engine = engine

    @property
    def engine(self) -> Optional[Any]:
        """The :class:`~repro.sim.engine.EventEngine` this clock views,
        or ``None`` for a standalone/local-frontier clock."""
        return self._engine

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time.

        Negative advances are rejected: simulated time never flows backwards.
        """
        if seconds < 0.0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, deadline: float) -> float:
        """Advance to an absolute ``deadline`` (no-op if already past it)."""
        if deadline > self._now:
            self._now = deadline
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.9f})"
