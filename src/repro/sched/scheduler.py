"""The disk request queue.

:class:`DiskScheduler` sits between a host (or block device) and the raw
:class:`~repro.disk.disk.Disk`.  Writes are *submitted*; the scheduler
services them -- in policy order -- whenever the queue reaches
``queue_depth``, when idle time is granted (:meth:`drain`), or while a
synchronous read works its way to completion.  Completion times therefore
come from the scheduler, not from serialized ``Disk.write`` calls.

Timing model: the simulator's single clock advances only inside disk
operations, so a "service" is atomic -- positioning, rotation, and
transfer happen back to back.  ``queue_depth=1`` degenerates to servicing
every request at submit time, which issues literally the same
``disk.read``/``disk.write`` call sequence as the unscheduled seed code:
the byte-identity guarantee the figure pins rely on.

Starvation: greedy policies (SATF especially) can pass over a distant
request indefinitely under a hostile arrival stream.  The scheduler
counts how often each pending request is passed over by a *policy*
choice; once the oldest request has been passed ``starvation_bound``
times it is serviced next, policy notwithstanding, and counts freeze
while the aged backlog drains oldest-first -- so no request's pass-over
count ever exceeds the bound.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.disk.disk import Disk
from repro.sched.policies import SchedulingPolicy, make_policy
from repro.sim.metrics import LatencyHistogram
from repro.sim.stats import Breakdown


class DiskRequest:
    """One queued disk request and its lifecycle timestamps."""

    __slots__ = (
        "op",
        "sector",
        "count",
        "data",
        "charge_scsi",
        "seq",
        "arrival",
        "passes",
        "done",
        "failed",
        "result",
        "breakdown",
        "service_start",
        "completion",
    )

    def __init__(
        self,
        op: str,
        sector: int,
        count: int,
        data: Optional[bytes],
        charge_scsi: bool,
        seq: int,
        arrival: float,
    ) -> None:
        self.op = op
        self.sector = sector
        self.count = count
        self.data = data
        self.charge_scsi = charge_scsi
        self.seq = seq
        self.arrival = arrival
        self.passes = 0
        self.done = False
        self.failed = False
        self.result: Optional[bytes] = None
        self.breakdown: Optional[Breakdown] = None
        self.service_start: Optional[float] = None
        self.completion: Optional[float] = None

    def __repr__(self) -> str:
        state = "done" if self.done else f"pending(passes={self.passes})"
        return (
            f"DiskRequest(#{self.seq} {self.op} sector={self.sector} "
            f"count={self.count} {state})"
        )


class DiskScheduler:
    """A bounded request queue over one disk, with a pluggable policy.

    Args:
        disk: The disk whose mechanics service (and price) requests.
        policy: Policy name (``fifo``/``scan``/``satf``) or instance.
        queue_depth: Maximum outstanding requests; submitting beyond it
            services requests until the queue fits.  Depth 1 services at
            submit time (the unscheduled seed behaviour).
        starvation_bound: Maximum times a request may be passed over.
    """

    def __init__(
        self,
        disk: Disk,
        policy: Union[str, SchedulingPolicy] = "fifo",
        queue_depth: int = 1,
        starvation_bound: int = 16,
    ) -> None:
        if queue_depth <= 0:
            raise ValueError("queue depth must be positive")
        if starvation_bound <= 0:
            raise ValueError("starvation bound must be positive")
        self.disk = disk
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.queue_depth = queue_depth
        self.starvation_bound = starvation_bound
        #: Pending requests in arrival order (oldest first).
        self._pending: List[DiskRequest] = []
        self._seq = 0
        #: Breakdowns of serviced writes not yet claimed by a caller.
        self._unclaimed = Breakdown()
        self.serviced = 0
        self.busy_seconds = 0.0
        self.max_outstanding = 0
        self.service_times = LatencyHistogram()
        self.response_times = LatencyHistogram()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Requests currently queued (the MetricsDevice overlap probe)."""
        return len(self._pending)

    def write(
        self,
        sector: int,
        count: int = 1,
        data: Optional[bytes] = None,
        charge_scsi: bool = True,
    ) -> DiskRequest:
        """Submit a write; services requests until the queue fits.

        Returns the request object: at depth 1 it is already done (its
        breakdown claimable via :meth:`take_breakdown`); at greater depth
        it completes during later submissions, reads, or a drain.
        """
        req = self._enqueue("write", sector, count, data, charge_scsi)
        while len(self._pending) >= self.queue_depth:
            self.service_one()
        return req

    def read(
        self, sector: int, count: int = 1, charge_scsi: bool = True
    ) -> Tuple[bytes, Breakdown]:
        """Submit a read and service until it completes (reads are
        synchronous: the caller needs the data).  Queued writes may be
        serviced first if the policy prefers them."""
        req = self._enqueue("read", sector, count, None, charge_scsi)
        while not req.done:
            self.service_one()
        assert req.result is not None and req.breakdown is not None
        return req.result, req.breakdown

    def _enqueue(
        self,
        op: str,
        sector: int,
        count: int,
        data: Optional[bytes],
        charge_scsi: bool,
    ) -> DiskRequest:
        req = DiskRequest(
            op, sector, count, data, charge_scsi, self._seq, self.disk.clock.now
        )
        self._seq += 1
        self._pending.append(req)
        if len(self._pending) > self.max_outstanding:
            self.max_outstanding = len(self._pending)
        return req

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------

    def service_one(self) -> DiskRequest:
        """Service one pending request, chosen by policy (or by the
        starvation override)."""
        if not self._pending:
            raise RuntimeError("no pending requests to service")
        oldest = self._pending[0]
        if oldest.passes >= self.starvation_bound or len(self._pending) == 1:
            # Aging override: the backlog drains oldest-first and pass
            # counts freeze, so no request's count ever exceeds the bound
            # (a younger request's count never exceeds an older one's,
            # and counts only grow while the oldest is still under it).
            chosen = oldest
        else:
            chosen = self.policy.pick(self._pending, self.disk)
            for req in self._pending:
                if req is not chosen:
                    req.passes += 1
        self._pending.remove(chosen)
        clock = self.disk.clock
        chosen.service_start = clock.now
        try:
            if chosen.op == "read":
                data, breakdown = self.disk.read(
                    chosen.sector, chosen.count, charge_scsi=chosen.charge_scsi
                )
                chosen.result = data
            else:
                breakdown = self.disk.write(
                    chosen.sector,
                    chosen.count,
                    chosen.data,
                    charge_scsi=chosen.charge_scsi,
                )
        except BaseException:
            # A fault surfaced mid-service (injected error, crash): the
            # request leaves the queue and the exception propagates to
            # whoever triggered the servicing -- at depth 1, the original
            # submitter, exactly as in the unscheduled code.
            chosen.failed = True
            chosen.done = True
            raise
        chosen.breakdown = breakdown
        chosen.completion = clock.now
        chosen.done = True
        if chosen.op == "write":
            self._unclaimed.add(breakdown)
        self.serviced += 1
        self.busy_seconds += chosen.completion - chosen.service_start
        self.service_times.record(chosen.completion - chosen.service_start)
        self.response_times.record(chosen.completion - chosen.arrival)
        return chosen

    def drain(self) -> Breakdown:
        """Service everything pending (a write barrier / idle signal);
        returns all unclaimed write breakdowns."""
        while self._pending:
            self.service_one()
        return self.take_breakdown()

    def take_breakdown(self) -> Breakdown:
        """Claim the breakdowns of writes serviced since the last claim."""
        out = self._unclaimed
        self._unclaimed = Breakdown()
        return out

    def discard_pending(self) -> List[DiskRequest]:
        """Drop every pending request without servicing it (power loss:
        queued writes never reached the media)."""
        dropped = self._pending
        self._pending = []
        return dropped
