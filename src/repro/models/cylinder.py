"""The single-cylinder model (Section 2.2).

The expected latency is the expectation of ``min(x, y)`` where ``x`` is the
rotational delay (in sector slots) to the nearest free sector on the current
track and ``y`` the delay to the nearest free sector on any *other* track of
the cylinder, penalised by the head-switch time::

    E = sum_x sum_y min(x, y) * f_x(p, x) * f_y(p, y)            (2)
    f_x(p, x) = p * (1 - p) ** x                                 (3)
    f_y(p, y) = f_x(1 - (1 - p) ** (t - 1), y - s)               (4)

Section 2.2 (Figure 1) shows this is a good approximation for a whole zone:
nearby cylinders are not much more likely than the current one to have a
free sector at a better rotational position, and the head-switch time is
close to a single-cylinder seek.
"""

from __future__ import annotations

from repro.disk.specs import DiskSpec

#: Probability mass below which distribution tails are truncated.
_TAIL_EPS = 1e-12


def _geometric_pmf(p: float, max_terms: int):
    """Yield (value, probability) for f_x(p, x) = p (1-p)^x, truncated."""
    if p <= 0.0:
        return
    prob = p
    for x in range(max_terms):
        yield x, prob
        prob *= 1.0 - p
        if prob < _TAIL_EPS:
            break


def cylinder_expected_skip_sectors(
    n: int, t: int, p: float, head_switch_slots: float
) -> float:
    """Formula (2): expected delay in sector slots for a whole cylinder.

    Args:
        n: Sectors per track.
        t: Tracks per cylinder.
        p: Free-space fraction in (0, 1].
        head_switch_slots: Head-switch cost ``s`` expressed in sector slots.

    Returns:
        Expected rotational slots before a write can begin.  Falls back to
        the single-track expectation when the cylinder has one track.
    """
    if n <= 0 or t <= 0:
        raise ValueError("n and t must be positive")
    if not 0.0 < p <= 1.0:
        raise ValueError("free-space fraction p must lie in (0, 1]")
    if head_switch_slots < 0.0:
        raise ValueError("head-switch cost must be non-negative")
    max_terms = max(8 * n, 64)
    if t == 1:
        return sum(x * fx for x, fx in _geometric_pmf(p, max_terms))
    # Probability that a given rotational position is free on at least one
    # of the other (t - 1) tracks.
    p_other = 1.0 - (1.0 - p) ** (t - 1)
    expectation = 0.0
    for x, fx in _geometric_pmf(p, max_terms):
        for j, fy in _geometric_pmf(p_other, max_terms):
            y = j + head_switch_slots
            expectation += min(x, y) * fx * fy
    return expectation


def cylinder_expected_latency(spec: DiskSpec, p: float) -> float:
    """Expected locate latency in *seconds* for a drive at free fraction ``p``."""
    slots = cylinder_expected_skip_sectors(
        n=spec.sectors_per_track,
        t=spec.tracks_per_cylinder,
        p=p,
        head_switch_slots=spec.head_switch_time / spec.sector_time,
    )
    return slots * spec.sector_time


def single_track_latency(spec: DiskSpec, p: float) -> float:
    """Single-track model (1) in seconds, for comparison plots."""
    from repro.models.single_track import expected_skip_sectors

    return expected_skip_sectors(spec.sectors_per_track, p) * spec.sector_time
