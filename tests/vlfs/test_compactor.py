"""The VLFS idle-time compactor ("only an optimization", Section 3.4)."""

import random

import pytest

from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.hosts.specs import SPARCSTATION_10
from repro.vlfs.vlfs import VLFS

_MB = 1 << 20


@pytest.fixture
def fs():
    return VLFS(Disk(ST19101), SPARCSTATION_10)


def churn(fs, file_mb=10, updates=700, seed=3):
    rng = random.Random(seed)
    fs.create("/t")
    blob = bytes(4096) * 256
    contents = {}
    for chunk in range(file_mb):
        fs.write("/t", chunk * len(blob), blob)
    fs.sync()
    for i in range(updates):
        offset = rng.randrange(file_mb * 256) * 4096
        payload = bytes([i % 251]) * 4096
        fs.write("/t", offset, payload, sync=True)
        contents[offset] = payload
    return contents


class TestVlfsCompactor:
    def test_creates_empty_tracks(self, fs):
        churn(fs)
        geometry = fs.disk.geometry
        per_track = geometry.sectors_per_track

        def empty_tracks():
            return sum(
                1
                for cylinder in range(geometry.num_cylinders)
                for head in range(geometry.tracks_per_cylinder)
                if fs.freemap.track_free_count(cylinder, head) == per_track
            )

        before = empty_tracks()
        fs.compactor.run_for(3.0)
        assert fs.compactor.blocks_moved > 0
        assert empty_tracks() >= before

    def test_preserves_contents(self, fs):
        contents = churn(fs, updates=500)
        fs.compactor.run_for(3.0)
        for offset, payload in contents.items():
            data, _ = fs.read("/t", offset, 4096)
            assert data == payload, f"offset {offset}"

    def test_survives_recovery_after_compaction(self, fs):
        contents = churn(fs, updates=400)
        fs.compactor.run_for(2.0)
        fs.power_down()
        fs.crash()
        fs.recover()
        fs.vlog.check_invariants()
        for offset, payload in list(contents.items())[:100]:
            data, _ = fs.read("/t", offset, 4096)
            assert data == payload

    def test_runs_from_idle_hook(self, fs):
        churn(fs, updates=400)
        start = fs.clock.now
        fs.idle(1.0)
        assert fs.clock.now >= start + 1.0
        assert fs.compactor.blocks_moved > 0

    def test_budget_respected(self, fs):
        churn(fs, updates=300)
        used = fs.compactor.run_for(0.05)
        assert used <= 0.05 + 0.3

    def test_negative_budget_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.compactor.run_for(-1.0)

    def test_noop_on_empty_fs(self, fs):
        used = fs.compactor.run_for(0.5)
        assert fs.compactor.blocks_moved == 0
        assert used <= 0.5
