"""Ablation: the track-fill threshold (Sections 2.3 / 4.2).

Sweeps the VLD's fill threshold and cross-checks against the Section 2.3
analytical model's preferred operating region.
"""

import random

from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.harness.report import format_table
from repro.hosts.specs import SPARCSTATION_10
from repro.models.compactor import average_latency_closed_form
from repro.ufs.ufs import UFS
from repro.vlog.vld import VirtualLogDisk
from repro.workloads.random_update import prepare_file, run_random_updates

from .conftest import full_scale, run_once

_MB = 1 << 20


def _run(fill_threshold):
    vld = VirtualLogDisk(Disk(ST19101), fill_threshold=fill_threshold)
    fs = UFS(vld, SPARCSTATION_10)
    file_bytes = 10 * _MB
    prepare_file(fs, "/t", file_bytes)
    vld.idle(5.0)  # let the compactor establish the regime
    updates = 250 if full_scale() else 100
    recorder = run_random_updates(
        fs, "/t", file_bytes, updates, warmup=updates // 3
    )
    return recorder.mean() * 1e3


def test_ablation_fill_threshold(benchmark):
    thresholds = [0.5, 0.75, 0.9]

    results = run_once(
        benchmark, lambda: {t: _run(t) for t in thresholds}
    )

    n = ST19101.sectors_per_track
    print()
    rows = []
    for threshold, latency in results.items():
        m = int(round((1 - threshold) * n))
        model = average_latency_closed_form(
            n, m, ST19101.head_switch_time, ST19101.sector_time
        )
        rows.append([f"{threshold:.0%}", latency, model * 1e3])
    print(
        format_table(
            ["fill threshold", "measured (ms/4KB)", "model locate (ms)"],
            rows,
            title="Ablation: VLD track-fill threshold (paper uses 75%)",
        )
    )

    # The measured spread at moderate utilization is modest -- consistent
    # with the model's shallow optimum region (Figure 2).
    values = list(results.values())
    assert max(values) < 2.5 * min(values)
