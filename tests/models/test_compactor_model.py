"""The compactor-assisted model (Section 2.3, formulas 5, 10-13)."""

import math

import pytest

from repro.disk.specs import HP97560, ST19101
from repro.models.compactor import (
    average_latency_closed_form,
    average_latency_exact,
    nonrandomness_correction,
    optimal_threshold,
    total_skip_exact,
)


class TestExactSum:
    def test_no_reserve_sums_all_terms(self):
        n = 8
        expected = sum((n - i) / (1 + i) for i in range(1, n + 1))
        assert total_skip_exact(n, 0) == pytest.approx(expected)

    def test_full_reserve_is_zero(self):
        assert total_skip_exact(72, 72) == 0.0

    def test_decreasing_in_reserve(self):
        values = [total_skip_exact(72, m) for m in range(0, 72, 8)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            total_skip_exact(72, -1)
        with pytest.raises(ValueError):
            total_skip_exact(72, 73)


class TestClosedFormVsExact:
    def test_integral_approximation_close_without_correction(self):
        """(n+1) ln((n+2)/(m+2)) - (n-m) approximates the sum (10)."""
        for n in (72, 256):
            for m in (4, n // 4, n // 2):
                exact = total_skip_exact(n, m)
                approx = (n + 1) * math.log((n + 2) / (m + 2)) - (n - m)
                assert approx == pytest.approx(exact, rel=0.05, abs=0.5)

    def test_closed_form_tracks_exact_latency(self):
        for spec in (HP97560, ST19101):
            n = spec.sectors_per_track
            for m in (n // 8, n // 4, n // 2):
                exact = average_latency_exact(
                    n, m, spec.head_switch_time, spec.sector_time
                )
                closed = average_latency_closed_form(
                    n, m, spec.head_switch_time, spec.sector_time
                )
                assert closed == pytest.approx(exact, rel=0.05)

    def test_zero_writable_rejected(self):
        with pytest.raises(ValueError):
            average_latency_closed_form(72, 72, 1e-3, 1e-4)


class TestCorrection:
    def test_correction_non_negative(self):
        for n in (72, 256):
            for m in range(0, n, 16):
                assert nonrandomness_correction(n, m) >= 0.0

    def test_correction_vanishes_at_high_reserve(self):
        # Barely-filled tracks stay random: tiny correction.
        assert nonrandomness_correction(72, 70) < 0.01

    def test_correction_grows_toward_full_fill(self):
        low = nonrandomness_correction(256, 200)
        high = nonrandomness_correction(256, 16)
        assert high > low


class TestFigure2Claims:
    def test_u_shape(self):
        """Figure 2: too-frequent and too-rare switching both lose."""
        for spec in (HP97560, ST19101):
            n = spec.sectors_per_track
            latencies = [
                average_latency_closed_form(
                    n, m, spec.head_switch_time, spec.sector_time
                )
                for m in range(1, n)
            ]
            best = min(range(len(latencies)), key=latencies.__getitem__)
            # interior optimum: neither switch-every-write nor never-switch
            assert 0 < best < len(latencies) - 1

    def test_optimal_threshold_is_moderate(self):
        # Figure 2's minima sit at mid-range thresholds for both drives.
        for spec in (HP97560, ST19101):
            m, latency = optimal_threshold(spec)
            n = spec.sectors_per_track
            assert 0.2 < m / n < 0.85
            assert latency > 0.0

    def test_paper_75_percent_fill_choice_is_reasonable(self):
        """Section 4.2 fills tracks to 75 % (25 % reserved) -- left of the
        model's optimum (it trades a little write latency for less
        compaction work), but within a small factor of it."""
        for spec in (HP97560, ST19101):
            n = spec.sectors_per_track
            m_quarter = n // 4
            at_quarter = average_latency_closed_form(
                n, m_quarter, spec.head_switch_time, spec.sector_time
            )
            _, best = optimal_threshold(spec)
            assert at_quarter <= 3.0 * best
            # And it remains far better than an update-in-place
            # half-rotation.
            assert at_quarter < spec.rotation_time / 4

    def test_compactor_regime_beats_greedy_at_high_utilization(self):
        """Section 2.3's purpose: with a compactor the allocator avoids the
        high-utilization blow-up of Figure 1."""
        from repro.models.cylinder import cylinder_expected_latency

        for spec in (HP97560, ST19101):
            n = spec.sectors_per_track
            m, with_compactor = optimal_threshold(spec)
            greedy_at_90 = cylinder_expected_latency(spec, 0.1)
            assert with_compactor < greedy_at_90
