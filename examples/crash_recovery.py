#!/usr/bin/env python3
"""Crash and recovery walk-through for every stack in the reproduction.

Exercises the four recovery stories the paper tells:

* the Virtual Log Disk's tail-record recovery and its scan fallback
  (Section 3.2), with fault injection on the power-down record;
* a power loss injected *mid-write*, below the VLD, in the middle of its
  internal data-write / map-append sequence -- the atomicity claim;
* LFS checkpoint + roll-forward recovery;
* LFS with NVRAM, whose buffer survives the crash.

Run:  python examples/crash_recovery.py
"""

import random

from repro.blockdev import DeviceCrashed, DiskFaultInjector, build_device_stack
from repro.disk import Disk, ST19101
from repro.hosts import SPARCSTATION_10
from repro.lfs import LFS


def vld_story() -> None:
    print("== Virtual Log Disk ==")
    vld = build_device_stack(Disk(ST19101), "vld")
    rng = random.Random(1)
    expected = {}
    for _ in range(400):
        lba = rng.randrange(vld.num_blocks)
        payload = bytes([rng.randrange(256)]) * 4096
        vld.write_block(lba, payload)
        expected[lba] = payload

    # Orderly power-down: the firmware stores the log tail.
    vld.power_down()
    vld.crash()
    outcome = vld.recover()
    ok = all(vld.read_block(l)[0] == p for l, p in expected.items())
    print(
        f"  power-down record: recovered {outcome.records_read} map "
        f"records in {outcome.elapsed * 1e3:.0f} ms simulated "
        f"(intact: {ok})"
    )

    # The rare failure: the power-down write was corrupted.
    vld.power_down()
    vld.power_store.corrupt()
    vld.crash()
    outcome = vld.recover()
    ok = all(vld.read_block(l)[0] == p for l, p in expected.items())
    print(
        f"  corrupt record -> scan of {outcome.blocks_scanned} positions "
        f"in {outcome.elapsed * 1e3:.0f} ms simulated (intact: {ok})"
    )
    print()


def midwrite_story() -> None:
    print("== Power loss mid-write (injected below the VLD) ==")
    disk = Disk(ST19101)
    vld = build_device_stack(disk, "vld")
    rng = random.Random(2)
    acknowledged = {}
    for _ in range(200):
        lba = rng.randrange(vld.num_blocks)
        payload = bytes([rng.randrange(256)]) * 4096
        vld.write_block(lba, payload)
        acknowledged[lba] = payload

    # Kill the drive on its 3rd physical write from now: inside the next
    # logical write's internal data-write / map-append sequence, with the
    # fatal write itself torn at sector granularity.
    injector = DiskFaultInjector(crash_after_writes=3, torn=True)
    injector.install(disk)
    try:
        while True:
            lba = rng.randrange(vld.num_blocks)
            payload = bytes([rng.randrange(256)]) * 4096
            vld.write_block(lba, payload)
            acknowledged[lba] = payload  # only reached if acknowledged
    except DeviceCrashed as crash:
        print(f"  {crash}")
    injector.uninstall(disk)

    vld.crash()
    outcome = vld.recover()
    ok = all(vld.read_block(l)[0] == p for l, p in acknowledged.items())
    print(
        f"  recovery by {'scan' if outcome.scanned else 'tail record'}: "
        f"every acknowledged write readable, the interrupted one invisible "
        f"(consistent: {ok})"
    )
    print()


def lfs_story(nvram: bool) -> None:
    label = "LFS with NVRAM buffer" if nvram else "LFS (volatile buffer)"
    print(f"== {label} ==")
    fs = LFS(build_device_stack(Disk(ST19101)), SPARCSTATION_10, nvram=nvram)
    fs.mkdir("/mail")
    fs.create("/mail/inbox")
    fs.write("/mail/inbox", 0, b"message one\n")
    fs.checkpoint()

    # Work past the checkpoint: flushed to the log, but not checkpointed.
    fs.write("/mail/inbox", 4096, b"message two\n")
    fs.sync()
    # And work that never left the buffer at all.
    fs.write("/mail/inbox", 8192, b"message three (buffered)\n")

    fs.crash()
    cost = fs.mount()
    one, _ = fs.read("/mail/inbox", 0, 12)
    two, _ = fs.read("/mail/inbox", 4096, 12)
    three, _ = fs.read("/mail/inbox", 8192, 25)
    print(f"  mount (checkpoint + roll-forward): "
          f"{cost.total * 1e3:.0f} ms simulated")
    print(
        "  checkpointed data  : "
        + ("safe" if one == b"message one\n" else "LOST")
    )
    print(
        "  rolled-forward data: "
        + ("safe" if two == b"message two\n" else "LOST")
    )
    survived = three == b"message three (buffered)\n"
    print(
        "  buffered-only data : "
        + ("safe (NVRAM)" if survived else "lost (volatile DRAM)")
    )
    print()


def main() -> None:
    vld_story()
    midwrite_story()
    lfs_story(nvram=False)
    lfs_story(nvram=True)


if __name__ == "__main__":
    main()
