"""Low-level simulation routines for the analytical-model validations
(Figures 1 and 2) and the queued-workload driver (the queue-depth sweep)."""

from __future__ import annotations

import random
from typing import Dict

from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap, nearest_set_bit
from repro.disk.specs import DiskSpec
from repro.sched.pipeline import HostPipeline
from repro.sched.scheduler import DiskScheduler
from repro.vlog.allocator import AllocationPolicy, EagerAllocator


def simulate_locate_free(
    spec: DiskSpec,
    free_fraction: float,
    trials: int = 300,
    seed: int = 1,
    num_cylinders: int = 0,
) -> float:
    """Mean time (seconds) to locate the nearest free sector (Figure 1).

    Free space is randomly distributed at the given fraction; between
    trials the head is flung to a random track and the platter phase
    randomised, then the eager-writing search (unrestricted, always the
    nearest sector -- the Figure 1 configuration) picks its sector.  The
    located sector is re-freed so utilization stays constant.
    """
    if not 0.0 < free_fraction <= 1.0:
        raise ValueError("free fraction must lie in (0, 1]")
    rng = random.Random(seed)
    disk = Disk(spec, num_cylinders=num_cylinders, store_data=False)
    freemap = FreeSpaceMap(disk.geometry)
    total = disk.geometry.total_sectors
    occupied = int(round((1.0 - free_fraction) * total))
    for sector in rng.sample(range(total), occupied):
        freemap.mark_used(sector)
    if freemap.free_sectors == 0:
        raise ValueError("no free sectors at this utilization")
    allocator = EagerAllocator(
        disk, freemap, block_sectors=1, policy=AllocationPolicy.NEAREST
    )
    total_locate = 0.0
    for _ in range(trials):
        # Random head position and rotational phase.
        disk.head_cylinder = rng.randrange(disk.geometry.num_cylinders)
        disk.head_head = rng.randrange(disk.geometry.tracks_per_cylinder)
        disk.clock.advance(rng.random() * disk.mechanics.rotation_time)
        # Align to the next slot boundary: the model counts whole sectors
        # skipped, with the head starting at a sector edge.
        slot = disk.mechanics.rotational_slot(disk.clock.now)
        partial = (1.0 - (slot % 1.0)) % 1.0
        disk.clock.advance(partial * disk.mechanics.sector_time)
        start = disk.clock.now
        block = allocator.allocate()
        cost = disk.write(block, 1, charge_scsi=False)
        # Positioning only: exclude the one-sector transfer.
        total_locate += cost.locate
        assert disk.clock.now >= start
        freemap.mark_free(block)
    return total_locate / trials


def simulate_track_fill(
    spec: DiskSpec,
    threshold_free_fraction: float,
    trials: int = 40,
    seed: int = 2,
) -> float:
    """Mean per-write latency filling empty tracks to a threshold (Fig. 2).

    Writes single sectors to an initially empty track, each write arriving
    at a random rotational phase (the model's random-arrival assumption),
    until only ``threshold_free_fraction`` of the track remains free; then
    pays one track switch and repeats.  Returns seconds per write including
    the amortised switch cost -- formula (11)'s quantity.
    """
    if not 0.0 <= threshold_free_fraction < 1.0:
        raise ValueError("threshold must lie in [0, 1)")
    rng = random.Random(seed)
    n = spec.sectors_per_track
    reserve = int(round(threshold_free_fraction * n))
    writes_per_track = n - reserve
    if writes_per_track <= 0:
        raise ValueError("threshold leaves no writable sectors")
    sector_time = spec.sector_time
    total = 0.0
    writes = 0
    for _ in range(trials):
        # One free-slot bitmask per track fill, searched with the same
        # bit-twiddling primitive the production free map uses.
        free_mask = (1 << n) - 1
        for _write in range(writes_per_track):
            # Arrivals are random but the head engages at a sector
            # boundary, matching the model's whole-sector accounting.
            phase = rng.randrange(n)
            chosen = nearest_set_bit(free_mask, n, phase)
            assert chosen is not None
            free_mask &= ~(1 << chosen)
            total += ((chosen - phase) % n) * sector_time
            writes += 1
        total += spec.head_switch_time  # switch to the next empty track
    return total / writes


QUEUE_WORKLOADS = ("random-update", "sequential", "mixed")


def simulate_queued_workload(
    spec: DiskSpec,
    queue_depth: int = 1,
    policy: str = "fifo",
    workload: str = "random-update",
    requests: int = 400,
    request_sectors: int = 8,
    think_seconds: float = 0.0002,
    seed: int = 3,
    num_cylinders: int = 0,
) -> Dict[str, float]:
    """Drive a queued open-loop write workload through the host pipeline.

    The host submits ``requests`` writes of ``request_sectors`` each,
    thinking ``think_seconds`` between submissions; up to ``queue_depth``
    requests stay outstanding, serviced in ``policy`` order.  Workloads:

    * ``random-update`` -- uniformly random aligned targets (the
      seek-dominated case queue reordering helps most);
    * ``sequential`` -- ascending aligned targets (little to reorder);
    * ``mixed`` -- alternating sequential and random targets.

    Returns per-run scalars: elapsed seconds, mean/percentile service
    times, mean response time (arrival to completion), and throughput.
    """
    if workload not in QUEUE_WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; known: "
            + ", ".join(QUEUE_WORKLOADS)
        )
    if requests <= 0:
        raise ValueError("request count must be positive")
    rng = random.Random(seed)
    disk = Disk(spec, num_cylinders=num_cylinders, store_data=False)
    scheduler = DiskScheduler(disk, policy=policy, queue_depth=queue_depth)
    pipeline = HostPipeline(scheduler, think_seconds=think_seconds)
    aligned = disk.geometry.total_sectors // request_sectors
    cursor = rng.randrange(aligned)
    start = disk.clock.now
    for i in range(requests):
        if workload == "random-update":
            lba = rng.randrange(aligned)
        elif workload == "sequential":
            lba = (cursor + i) % aligned
        else:  # mixed
            if i % 2:
                lba = rng.randrange(aligned)
            else:
                cursor = (cursor + 1) % aligned
                lba = cursor
        pipeline.write(lba * request_sectors, request_sectors)
    pipeline.finish()
    elapsed = disk.clock.now - start
    service = scheduler.service_times.percentiles()
    response = scheduler.response_times
    response_pct = response.percentiles()
    return {
        "elapsed_seconds": elapsed,
        "mean_service_ms": scheduler.busy_seconds / scheduler.serviced * 1e3,
        "p50_service_ms": service["p50"] * 1e3,
        "p95_service_ms": service["p95"] * 1e3,
        "p99_service_ms": service["p99"] * 1e3,
        "p999_service_ms": service["p999"] * 1e3,
        "mean_response_ms": (
            response.sum / response.count * 1e3 if response.count else 0.0
        ),
        "p99_response_ms": response_pct["p99"] * 1e3,
        "p999_response_ms": response_pct["p999"] * 1e3,
        "requests_per_second": requests / elapsed if elapsed > 0 else 0.0,
        "max_outstanding": float(scheduler.max_outstanding),
    }
