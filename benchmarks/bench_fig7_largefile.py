"""Figure 7: large-file bandwidths per phase on the four stacks."""

from repro.harness import experiments
from repro.harness.report import format_table
from repro.workloads.largefile import LargeFileResult

from .conftest import full_scale, run_once


def test_figure7(benchmark):
    file_mb = 10 if full_scale() else 4

    result = run_once(
        benchmark, lambda: experiments.figure7(file_mb=file_mb)
    )

    print()
    rows = []
    for stack in ("ufs-regular", "ufs-vld", "lfs-regular", "lfs-vld"):
        row = [stack]
        for phase in LargeFileResult.PHASES:
            row.append(result[stack].get(phase, float("nan")))
        rows.append(row)
    print(
        format_table(
            ["stack", *LargeFileResult.PHASES],
            rows,
            title=f"Figure 7: large-file bandwidth, {file_mb} MB (MB/s)",
        )
    )

    # Synchronous random writes: VLD far ahead of update-in-place.
    assert (
        result["ufs-vld"]["rand_write_sync"]
        > 2 * result["ufs-regular"]["rand_write_sync"]
    )
    # Sequential read after random write collapses on log/eager layouts
    # but not on update-in-place.
    assert (
        result["ufs-vld"]["seq_read_again"]
        < 0.6 * result["ufs-vld"]["seq_read"]
    )
    assert (
        result["lfs-regular"]["seq_read_again"]
        < 0.8 * result["lfs-regular"]["seq_read"]
    )
    assert (
        result["ufs-regular"]["seq_read_again"]
        > 0.7 * result["ufs-regular"]["seq_read"]
    )
    # The VLD also speeds the *asynchronous* random writes (flush phase).
    assert (
        result["ufs-vld"]["rand_write_async"]
        >= 0.9 * result["ufs-regular"]["rand_write_async"]
    )
