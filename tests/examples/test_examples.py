"""The examples must stay runnable: they are the library's front door."""

import importlib.util
import pathlib
import random

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_main_runs_and_tells_the_story(self, capsys):
        load("quickstart").main()
        out = capsys.readouterr().out
        assert "faster" in out
        assert "data survived: True" in out
        assert "data intact after both recoveries: True" in out


class TestCrashRecovery:
    def test_main_runs_all_four_stories(self, capsys):
        load("crash_recovery").main()
        out = capsys.readouterr().out
        assert out.count("intact: True") == 2
        assert "injected power loss at physical write" in out
        assert "consistent: True" in out
        assert "rolled-forward data: safe" in out
        assert "safe (NVRAM)" in out
        assert "lost (volatile DRAM)" in out


class TestDatabaseCommit:
    def test_tiny_database_commits_faster_on_vld(self):
        module = load("database_commit")
        from repro.blockdev import RegularDisk
        from repro.disk import Disk, ST19101
        from repro.hosts import SPARCSTATION_10
        from repro.sim.stats import LatencyRecorder
        from repro.ufs import UFS
        from repro.vlog import VirtualLogDisk

        means = {}
        for label, build in (
            ("regular", RegularDisk),
            ("vld", VirtualLogDisk),
        ):
            fs = UFS(build(Disk(ST19101)), SPARCSTATION_10)
            db = module.TinyDatabase(
                fs, pages=512, rng=random.Random(1)
            )
            recorder = LatencyRecorder()
            for _ in range(60):
                db.commit(recorder)
            means[label] = recorder.mean()
        assert means["vld"] < means["regular"] / 2


class TestMultihostDemo:
    def test_overlap_story_holds(self, capsys):
        load("multihost_demo").main()
        out = capsys.readouterr().out
        # The depth-1 closed loop hides exactly zero think time...
        assert "1 host hides 0.0000s" in out
        assert "exactly zero by construction" in out
        # ...while four hosts hide a real, positive amount.
        assert "4 hosts hide 0." in out
        assert "4 hosts hide 0.0000s" not in out
        assert "p99 response" in out


class TestFilesystemAging:
    def test_aging_and_measurement_pipeline(self):
        module = load("filesystem_aging")
        from repro.disk import Disk, ST19101
        from repro.hosts import SPARCSTATION_10
        from repro.ufs import UFS
        from repro.vlog import VirtualLogDisk

        fs = UFS(VirtualLogDisk(Disk(ST19101)), SPARCSTATION_10)
        rng = random.Random(7)
        module.age(fs, rng, rounds=120)
        create_s, update_s, seq_bw = module.measure(fs, rng, "vld")
        assert create_s > 0 and update_s > 0 and seq_bw > 0
        fs.device.vlog.check_invariants()


class TestNvmWalDemo:
    def test_main_runs_all_four_stories(self, capsys):
        load("nvm_wal_demo").main()
        out = capsys.readouterr().out
        assert "x faster" in out
        assert "dirty blocks after idle : 0" in out
        assert "intact: True" in out and "intact: False" not in out
        assert "vlfsck clean: True" in out
        assert "torn tail detected: True" in out
        assert "every acked write survived" in out
