"""The single-shard identity pin: a one-shard volume IS a plain VLD.

The volume layer is only allowed to *route*; with one shard there is
nothing to route, so every operation must delegate verbatim -- the same
disk calls, in the same order, at the same clock instants, and the same
returned bytes/breakdowns.  CI runs this file alongside the depth-1
figure identity gate: together they prove the volume layer cannot
perturb any existing single-device figure.
"""

import random

import pytest

from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.sim.clock import SimClock
from repro.vlog.vld import VirtualLogDisk
from repro.volume import ShardedVolume

OPS = 160


@pytest.fixture
def record_disk_calls(monkeypatch):
    """Shim Disk.read/write to log (op, sector, count, start, end)."""
    calls = []
    real_read, real_write = Disk.read, Disk.write

    def read(self, sector, count=1, *args, **kwargs):
        start = self.clock.now
        result = real_read(self, sector, count, *args, **kwargs)
        calls.append(("read", sector, count, start, self.clock.now))
        return result

    def write(self, sector, count=1, *args, **kwargs):
        start = self.clock.now
        result = real_write(self, sector, count, *args, **kwargs)
        calls.append(("write", sector, count, start, self.clock.now))
        return result

    monkeypatch.setattr(Disk, "read", read)
    monkeypatch.setattr(Disk, "write", write)
    return calls


def drive(device, seed=11, ops=OPS):
    """A seeded mixed workload; returns every observable the caller saw:
    read bytes and the total of every returned breakdown."""
    rng = random.Random(seed)
    size = device.block_size
    span = min(192, device.num_blocks)
    seen = []
    total = 0.0
    for i in range(ops):
        lba = rng.randrange(span)
        roll = rng.random()
        if roll < 0.55:
            cost = device.write_block(
                lba, bytes([(lba + i) % 251]) * size
            )
            total += cost.total
        elif roll < 0.8:
            count = min(rng.randrange(1, 9), span - lba)
            data, cost = device.read_blocks(lba, count)
            seen.append(data)
            total += cost.total
        elif roll < 0.9:
            count = min(rng.randrange(1, 5), span - lba)
            total += device.trim(lba, count).total
        else:
            device.idle(rng.random() * 0.01)
    # Orderly shutdown + recovery, then one more read pass: the
    # recover() delegation is part of the identity surface.
    device.power_down()
    device.crash()
    device.recover()
    for lba in range(0, span, 7):
        data, cost = device.read_block(lba)
        seen.append(data)
        total += cost.total
    return seen, total


def build_plain(queue_depth=1, sched="fifo"):
    disk = Disk(ST19101, clock=SimClock(), num_cylinders=4)
    return disk, VirtualLogDisk(
        disk, queue_depth=queue_depth, sched=sched
    )


@pytest.mark.parametrize("queue_depth,sched", [(1, "fifo"), (4, "satf")])
def test_disk_call_sequence_identical(record_disk_calls, queue_depth, sched):
    """The strongest form: every physical disk call matches, including
    its exact service interval."""
    _, plain = build_plain(queue_depth, sched)
    plain_seen, plain_total = drive(plain)
    plain_calls = list(record_disk_calls)
    record_disk_calls.clear()

    _, shard = build_plain(queue_depth, sched)
    volume = ShardedVolume([shard])
    volume_seen, volume_total = drive(volume)
    volume_calls = list(record_disk_calls)

    assert len(plain_calls) > 0
    assert volume_calls == plain_calls
    assert volume_seen == plain_seen
    assert volume_total == plain_total  # plain ==, no tolerance


def test_capacity_and_clock_identical():
    disk_a, plain = build_plain()
    disk_b, shard = build_plain()
    volume = ShardedVolume([shard])
    assert volume.num_blocks == plain.num_blocks
    assert volume.block_size == plain.block_size
    drive(plain)
    drive(volume)
    assert disk_b.clock.now == disk_a.clock.now


def test_single_shard_recover_passes_through():
    _, shard = build_plain()
    volume = ShardedVolume([shard])
    volume.write_block(3, b"\x77" * volume.block_size)
    volume.power_down()
    volume.crash()
    outcome = volume.recover()
    # A plain RecoveryOutcome, not a per-shard list.
    assert not isinstance(outcome, list)
    assert outcome.used_power_down_record
    data, _ = volume.read_block(3)
    assert data == b"\x77" * volume.block_size
