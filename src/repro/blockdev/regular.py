"""The regular disk: a trivial logical-to-physical identity mapping.

Logical block ``i`` lives at physical sectors ``[i * spb, (i+1) * spb)``.
This is the update-in-place baseline: whatever locality the file system
arranges in logical addresses is exactly the physical locality it gets --
and every in-place update pays the seek plus (on average) half-rotation the
paper's Section 2.1 contrasts eager writing against.

All media traffic flows through a :class:`~repro.sched.DiskScheduler`; at
the default ``queue_depth=1`` with FIFO the scheduler services each
request at submit time, issuing the identical ``disk.read``/``disk.write``
call the seed made directly.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.blockdev.interface import BlockDevice
from repro.disk.disk import Disk
from repro.sched.policies import SchedulingPolicy
from repro.sched.scheduler import DiskScheduler
from repro.sim.stats import Breakdown


class RegularDisk(BlockDevice):
    """Identity-mapped block device over a simulated disk.

    Args:
        disk: The simulated disk.
        block_size: Logical block size in bytes.
        queue_depth: Outstanding-request bound for the scheduler.
        sched: Scheduling policy name (``fifo``/``scan``/``satf``) or
            instance.
    """

    def __init__(
        self,
        disk: Disk,
        block_size: int = 4096,
        queue_depth: int = 1,
        sched: Union[str, SchedulingPolicy] = "fifo",
    ) -> None:
        if block_size % disk.sector_bytes != 0:
            raise ValueError("block size must be a multiple of the sector size")
        self.disk = disk
        self.block_size = block_size
        self.sectors_per_block = block_size // disk.sector_bytes
        if disk.geometry.sectors_per_track % self.sectors_per_block != 0:
            raise ValueError(
                "blocks must not straddle track boundaries "
                f"({disk.geometry.sectors_per_track} sectors/track, "
                f"{self.sectors_per_block} sectors/block)"
            )
        self.num_blocks = disk.total_sectors // self.sectors_per_block
        self.scheduler = DiskScheduler(
            disk, policy=sched, queue_depth=queue_depth
        )

    def _sector_of(self, lba: int) -> int:
        return lba * self.sectors_per_block

    def read_block(self, lba: int) -> Tuple[bytes, Breakdown]:
        return self.read_blocks(lba, 1)

    def write_block(self, lba: int, data: Optional[bytes] = None) -> Breakdown:
        return self.write_blocks(lba, 1, data)

    def read_blocks(self, lba: int, count: int) -> Tuple[bytes, Breakdown]:
        self.check_lba(lba, count)
        return self.scheduler.read(
            self._sector_of(lba), count * self.sectors_per_block
        )

    def write_blocks(
        self, lba: int, count: int, data: Optional[bytes] = None
    ) -> Breakdown:
        self.check_lba(lba, count)
        data = self.check_data(data, count)
        self.scheduler.write(
            self._sector_of(lba), count * self.sectors_per_block, data
        )
        # At depth 1 this is exactly the submitted write's breakdown; at
        # greater depth it covers whatever the submission serviced (the
        # queue-aware metrics layer attributes the rest via clock gaps).
        return self.scheduler.take_breakdown()

    def idle(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError("idle time must be non-negative")
        # Queue-emptiness is the idle signal: the queue drains first, and
        # only then does idle wall-clock time pass.
        self.scheduler.barrier()
        self.disk.clock.advance(seconds)

    def write_partial(self, lba: int, offset: int, data: bytes) -> Breakdown:
        self.check_lba(lba, 1)
        sector_bytes = self.disk.sector_bytes
        if offset % sector_bytes != 0 or len(data) % sector_bytes != 0:
            raise ValueError("partial writes must be sector aligned")
        if offset + len(data) > self.block_size:
            raise ValueError("partial write exceeds the block")
        start = self._sector_of(lba) + offset // sector_bytes
        self.scheduler.write(start, len(data) // sector_bytes, data)
        return self.scheduler.take_breakdown()
