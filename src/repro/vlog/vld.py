"""The Virtual Log Disk (Sections 3, 4.2).

A VLD packages eager writing, the indirection map, and the virtual log
behind the ordinary block-device interface, so an *unmodified* file system
gets the latency benefits.  Per logical write the drive:

1. eagerly writes the data to a free physical block near the head,
2. updates the in-memory indirection map, and
3. appends the affected map chunk to the virtual log (the commit point --
   one extra internal disk write, placed near the head as well).

The old physical copy (and the old map-record block) are recycled
afterwards; re-use of a logical address is how deletes are detected
("monitor overwrites", Section 4.2).  One SCSI command overhead is charged
per host request regardless of how many internal I/Os the drive issues --
the virtual log runs on the drive's own processor.

Crash/recovery: :meth:`power_down` persists the log tail for fast restarts;
:meth:`crash` models an abrupt failure.  :meth:`recover` rebuilds the map
from the tail record, or by scanning when that record is missing/corrupt.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.blockdev.interface import BlockDevice
from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap
from repro.sched.idle import IdleManager
from repro.sched.policies import SchedulingPolicy
from repro.sched.scheduler import DiskScheduler
from repro.sim.stats import Breakdown
from repro.vlog.allocator import AllocationPolicy, EagerAllocator
from repro.vlog.entries import QUARANTINE_CHUNK_BASE
from repro.vlog.imap import IndirectionMap
from repro.vlog.recovery import (
    PowerDownStore,
    RecoveryOutcome,
    scan_for_tail,
    scan_records,
)
from repro.vlog.resilience import MediaError, ResilienceController, RetryPolicy
from repro.vlog.virtual_log import VirtualLog


class VirtualLogDisk(BlockDevice):
    """Eager-writing logical disk over a simulated drive.

    Args:
        disk: The underlying simulated disk.
        block_size: Physical (and logical) block size; the paper uses 4 KB
            (Section 4.2, justified by formula (9)).
        policy: Eager allocation policy; ``TRACK_FILL`` is the paper's
            compactor-assisted configuration.
        fill_threshold: Track fill target for ``TRACK_FILL`` (0.75).
        slack_fraction: Physical blocks withheld from the logical capacity
            so eager writing always finds somewhere to go.
        resilience: Enable the media-fault resilience layer (per-sector
            checksums verified on read, bounded retries, bad-sector
            quarantine, idle-time scrubbing).  On by default; with no
            faults injected its timing is identical to the layer being
            absent (checksums are out-of-band, retries never fire, the
            scrubber only runs when suspects exist).
        retry_policy: Read-retry schedule for the resilience layer.
        queue_depth: Outstanding-request bound for the internal request
            scheduler; depth 1 (default) services every data write at
            submit time, byte-identical to the unscheduled code.
        sched: Scheduling policy name (``fifo``/``scan``/``satf``) or
            instance for the internal queue.
        batch_movement: Move data in run-granular batches: whole
            physically-contiguous runs are allocated at once
            (:meth:`EagerAllocator.allocate_run`), written through single
            ``write_run`` requests, and their map updates applied in one
            pass.  Placement, timing, and the per-block media access
            sequence are bit-identical to the scalar per-block path
            (``False``), which stays as the oracle.
    """

    #: Physical block housing the firmware power-down record; never
    #: allocated, never moved.
    POWER_DOWN_BLOCK = 0

    def __init__(
        self,
        disk: Disk,
        block_size: int = 4096,
        map_record_bytes: int = 512,
        policy: AllocationPolicy = AllocationPolicy.TRACK_FILL,
        fill_threshold: float = 0.75,
        slack_fraction: float = 0.02,
        resilience: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        queue_depth: int = 1,
        sched: Union[str, SchedulingPolicy] = "fifo",
        batch_movement: bool = True,
    ) -> None:
        if block_size % disk.sector_bytes != 0:
            raise ValueError("block size must be a multiple of the sector size")
        if map_record_bytes % disk.sector_bytes != 0:
            raise ValueError("map records must be whole sectors")
        self.disk = disk
        self.block_size = block_size
        self.map_record_bytes = map_record_bytes
        self.sectors_per_block = block_size // disk.sector_bytes
        self.physical_blocks = disk.total_sectors // self.sectors_per_block
        slack = max(8, int(self.physical_blocks * slack_fraction))
        # Map overhead: one live record per chunk (Section 4.2: 4 bytes per
        # physical block, ~24 KB of map sectors for the 24 MB disk).
        from repro.vlog.entries import entries_per_chunk

        chunk_capacity = entries_per_chunk(map_record_bytes)
        logical = self.physical_blocks - 1 - slack  # -1: power-down block
        map_sectors = -(-logical // chunk_capacity) * (
            map_record_bytes // disk.sector_bytes
        )
        logical -= -(-map_sectors // self.sectors_per_block) + 1
        if logical <= 0:
            raise ValueError("disk too small for a virtual log disk")
        self.num_blocks = logical

        self.freemap = FreeSpaceMap(disk.geometry)
        self.allocator = EagerAllocator(
            disk,
            self.freemap,
            block_sectors=self.sectors_per_block,
            policy=policy,
            fill_threshold=fill_threshold,
        )
        self.allocator.reserve_block(self.POWER_DOWN_BLOCK)
        #: Separate eager allocator for (sub-block) map records: single
        #: free sectors are plentiful even when aligned block runs are
        #: not, which is what keeps map updates cheap at high utilization.
        self.map_allocator = EagerAllocator(
            disk,
            self.freemap,
            block_sectors=map_record_bytes // disk.sector_bytes,
            policy=AllocationPolicy.GREEDY_CYLINDER,
        )
        self.imap = IndirectionMap(self.num_blocks, map_record_bytes)
        self.vlog = VirtualLog(
            disk,
            self.map_allocator,
            chunk_provider=self._chunk_contents,
            block_size=map_record_bytes,
        )
        #: Media-fault resilience layer (checksums, retries, quarantine,
        #: scrubber), or ``None`` when disabled.
        self.resilience: Optional[ResilienceController] = (
            ResilienceController(self, retry_policy) if resilience else None
        )
        self.power_store = PowerDownStore(
            disk,
            self.POWER_DOWN_BLOCK,
            block_size,
            tail_block_sectors=map_record_bytes // disk.sector_bytes,
        )
        #: physical block -> logical block, for the compactor.
        self.reverse: Dict[int, int] = {}
        self.logical_writes = 0
        self.logical_reads = 0
        self.batch_movement = batch_movement
        self.compaction_enabled = True
        self._compactor = None
        #: True while a valid power-down record sits on disk.  Any write
        #: after an orderly power-down invalidates it first, or a later
        #: crash would recover to the stale tail it names.
        self._power_record_armed = False
        #: Request queue for eager data writes.  Log appends (the commit
        #: point), map-record traffic, and recovery I/O bypass it: their
        #: ordering *is* the crash-consistency argument, so they only run
        #: behind a drain barrier.
        self.scheduler = DiskScheduler(
            disk, policy=sched, queue_depth=queue_depth
        )
        #: Idle-time dispatch: scrubbing suspects first (urgent, runs even
        #: on a zero-second grant, as the seed did), then compaction.
        self.idle_manager = IdleManager(disk.clock)
        self.idle_manager.register(
            "scrub", self._idle_scrub, gate=self._scrub_pending,
            needs_time=False,
        )
        self.idle_manager.register(
            "compact", self._idle_compact,
            gate=lambda: self.compaction_enabled,
        )

    @property
    def compactor(self):
        """The idle-time free-space compactor (created on first use)."""
        if self._compactor is None:
            from repro.vlog.compactor import FreeSpaceCompactor

            self._compactor = FreeSpaceCompactor(self)
        return self._compactor

    def _chunk_contents(self, chunk_id: int) -> List[int]:
        """Current contents of any non-commit log chunk: the indirection
        map's entries, or the quarantine table's payload for chunk ids in
        the quarantine range.  This is the log's ``chunk_provider``, so
        relocations (compactor, reachability repair, scrubber) rewrite
        every chunk kind faithfully."""
        if chunk_id >= QUARANTINE_CHUNK_BASE:
            if self.resilience is None:
                raise ValueError(
                    f"quarantine chunk {chunk_id} without a resilience layer"
                )
            return self.resilience.quarantine.chunk_payload(chunk_id)
        return self.imap.chunk_entries(chunk_id)

    def _read_physical(
        self,
        sector: int,
        count: int,
        breakdown: Optional[Breakdown],
        timed: bool = True,
    ) -> bytes:
        """Read sectors through the resilience layer when present (checksum
        verify + bounded retries), or straight from the disk otherwise."""
        if self.scheduler.outstanding:
            # Read barrier: queued eager writes must reach the media first
            # (they may cover the very sectors being read).  Their costs
            # ride on the request that forced the flush.
            flushed = self.scheduler.barrier()
            if breakdown is not None:
                breakdown.add(flushed)
        if self.resilience is not None:
            return self.resilience.read_sectors(
                sector, count, breakdown, timed=timed
            )
        if timed:
            data, cost = self.disk.read(sector, count, charge_scsi=False)
            if breakdown is not None:
                breakdown.add(cost)
            return data
        return self.disk.peek(sector, count)

    def _scrub_pending(self) -> bool:
        return self.resilience is not None and self.resilience.scrubber.pending

    def _idle_scrub(self, remaining: float) -> None:
        # Scrubbing rewrites the log: any stale power-down record must go
        # first.
        self._disarm_power_record(Breakdown())
        assert self.resilience is not None
        self.resilience.scrubber.run_for(remaining)

    def _idle_compact(self, remaining: float) -> None:
        self.compactor.run_for(remaining)

    def idle(self, seconds: float) -> None:
        """Idle time goes to scrubbing suspects, then compaction; any
        remainder simply passes.  Queue-emptiness is the idle signal: the
        request queue drains before any background work starts.  The
        scrubber gate is cheap and almost always closed: a VLD that never
        observed a fault spends every idle cycle exactly as before."""
        if seconds < 0.0:
            raise ValueError("idle time must be non-negative")
        self.scheduler.barrier()
        self.idle_manager.grant(seconds)

    # ------------------------------------------------------------------
    # BlockDevice interface
    # ------------------------------------------------------------------

    def read_block(self, lba: int) -> Tuple[bytes, Breakdown]:
        return self.read_blocks(lba, 1)

    def read_blocks(self, lba: int, count: int) -> Tuple[bytes, Breakdown]:
        self.check_lba(lba, count)
        breakdown = self._charge_scsi()
        pieces: List[bytes] = []
        # Coalesce physically contiguous runs into single media accesses --
        # sequentially written data usually is contiguous thanks to
        # track-fill allocation.
        run_start: Optional[int] = None
        run_len = 0
        for i in range(count):
            physical = self.imap.get(lba + i)
            if physical is None:
                self._flush_read_run(run_start, run_len, pieces, breakdown)
                run_start, run_len = None, 0
                pieces.append(bytes(self.block_size))
                continue
            if run_start is not None and physical == run_start + run_len:
                run_len += 1
                continue
            self._flush_read_run(run_start, run_len, pieces, breakdown)
            run_start, run_len = physical, 1
        self._flush_read_run(run_start, run_len, pieces, breakdown)
        self.logical_reads += count
        return b"".join(pieces), breakdown

    def _flush_read_run(
        self,
        run_start: Optional[int],
        run_len: int,
        pieces: List[bytes],
        breakdown: Breakdown,
    ) -> None:
        if run_start is None or run_len == 0:
            return
        data = self._read_physical(
            run_start * self.sectors_per_block,
            run_len * self.sectors_per_block,
            breakdown,
        )
        pieces.append(data)

    def write_block(self, lba: int, data: Optional[bytes] = None) -> Breakdown:
        return self.write_blocks(lba, 1, data)

    def write_blocks(
        self, lba: int, count: int, data: Optional[bytes] = None
    ) -> Breakdown:
        self.check_lba(lba, count)
        data = self.check_data(data, count)
        breakdown = self._charge_scsi()
        self._disarm_power_record(breakdown)
        # Process in runs that share a map chunk: write the data blocks of
        # the run, commit the chunk's map record once, then recycle the old
        # copies.  This both batches map updates (Section 3.2's transaction
        # note) and bounds transient space demand.
        i = 0
        while i < count:
            chunk_id = self.imap.chunk_id_of(lba + i)
            j = i
            while j < count and self.imap.chunk_id_of(lba + j) == chunk_id:
                j += 1
            self._write_run(lba + i, data, i, j - i, chunk_id, breakdown)
            i = j
        self.logical_writes += count
        return breakdown

    def _write_run(
        self,
        lba: int,
        data: bytes,
        data_offset_blocks: int,
        count: int,
        chunk_id: int,
        breakdown: Breakdown,
    ) -> None:
        displaced: List[int] = []
        spb = self.sectors_per_block
        block_size = self.block_size
        if self.batch_movement and count > 1:
            # Batched movement: allocate a whole physically-contiguous
            # run, issue it as one run request (serviced block by block
            # with identical timing), and apply the map updates in one
            # pass.  Placement matches the scalar loop exactly: the run
            # extension only accepts blocks the scalar query is forced
            # to return, and a conservative stop merely splits the run.
            imap_set = self.imap.set
            reverse = self.reverse
            # Zero-copy payload slicing: the per-run pieces are views into
            # the caller's (immutable) buffer, not 4 KB copies.
            view = memoryview(data)
            i = 0
            while i < count:
                first_block, run = self.allocator.allocate_run(count - i)
                lo = (data_offset_blocks + i) * block_size
                if run == 1:
                    # A one-block run is serviced exactly like a plain
                    # write; skip the run-request wrapper.
                    self.scheduler.write(
                        first_block * spb,
                        spb,
                        view[lo : lo + block_size],
                        charge_scsi=False,
                    )
                    old = imap_set(lba + i, first_block)
                    reverse[first_block] = lba + i
                    if old is not None:
                        displaced.append(old)
                    i += 1
                    continue
                self.scheduler.write_run(
                    first_block * spb,
                    run * spb,
                    spb,
                    view[lo : lo + run * block_size],
                    charge_scsi=False,
                )
                logical = lba + i
                for k in range(run):
                    old = imap_set(logical + k, first_block + k)
                    reverse[first_block + k] = logical + k
                    if old is not None:
                        displaced.append(old)
                i += run
        else:
            for i in range(count):
                new_block = self.allocator.allocate()
                lo = (data_offset_blocks + i) * block_size
                self.scheduler.write(
                    new_block * spb,
                    spb,
                    data[lo : lo + block_size],
                    charge_scsi=False,
                )
                old = self.imap.set(lba + i, new_block)
                self.reverse[new_block] = lba + i
                if old is not None:
                    displaced.append(old)
        # Write barrier, then the commit point: every queued data write
        # must reach the media before the map chunk's log record does, or
        # a crash between them would recover mappings to unwritten blocks.
        breakdown.add(self.scheduler.barrier())
        breakdown.add(
            self.vlog.append(chunk_id, self.imap.chunk_entries(chunk_id))
        )
        # Only now may the old copies be recycled (atomicity: a crash
        # before the commit recovers the old mapping and old data).
        reverse_pop = self.reverse.pop
        for old in displaced:
            reverse_pop(old, None)
        self.allocator.free_blocks(displaced)

    def move_block(
        self, lba: int, old_block: int, new_block: int, data: bytes
    ) -> int:
        """Relocate one live data block: media write plus the map/reverse
        bookkeeping, in the same order the write path applies it -- the
        single-block form of the batched movement path, shared by the
        compactor's hole-plugging and the scrubber's quarantine-first
        migration.  The caller owns allocating/freeing the physical
        blocks and committing the map record; the touched chunk id is
        returned for that commit."""
        spb = self.sectors_per_block
        self.disk.write(new_block * spb, spb, data, charge_scsi=False)
        self.imap.set(lba, new_block)
        self.reverse[new_block] = lba
        self.reverse.pop(old_block, None)
        return self.imap.chunk_id_of(lba)

    def write_partial(self, lba: int, offset: int, data: bytes) -> Breakdown:
        """Sub-block write: the VLD must read-modify-write a whole physical
        block (Section 4.2's internal-fragmentation bias against UFS)."""
        self.check_lba(lba, 1)
        if offset % self.disk.sector_bytes != 0:
            raise ValueError("partial writes must be sector aligned")
        if offset + len(data) > self.block_size:
            raise ValueError("partial write exceeds the block")
        breakdown = self._charge_scsi()
        self._disarm_power_record(breakdown)
        physical = self.imap.get(lba)
        if physical is None:
            old = bytes(self.block_size)
        else:
            old = self._read_physical(
                physical * self.sectors_per_block,
                self.sectors_per_block,
                breakdown,
            )
        merged = old[:offset] + data + old[offset + len(data) :]
        chunk_id = self.imap.chunk_id_of(lba)
        self._write_run(lba, merged, 0, 1, chunk_id, breakdown)
        self.logical_writes += 1
        return breakdown

    def trim(self, lba: int, count: int = 1) -> Breakdown:
        """Explicitly free logical blocks (the delete visibility a logical
        disk otherwise lacks; Section 4.2 notes un-overwritten frees are
        missed without this)."""
        self.check_lba(lba, count)
        breakdown = self.scheduler.barrier()  # before the log commit
        self._disarm_power_record(breakdown)
        touched: Dict[int, None] = {}
        displaced: List[int] = []
        for i in range(count):
            old = self.imap.clear(lba + i)
            if old is not None:
                displaced.append(old)
                touched[self.imap.chunk_id_of(lba + i)] = None
        for chunk_id in touched:
            breakdown.add(
                self.vlog.append(chunk_id, self.imap.chunk_entries(chunk_id))
            )
        for old in displaced:
            self.reverse.pop(old, None)
            self.allocator.free_block(old)
        return breakdown

    def _charge_scsi(self) -> Breakdown:
        breakdown = Breakdown()
        breakdown.charge("scsi", self.disk.spec.scsi_overhead)
        self.disk.clock.advance(self.disk.spec.scsi_overhead)
        return breakdown

    def _disarm_power_record(self, breakdown: Breakdown) -> None:
        """Erase a now-stale power-down record before mutating the log."""
        if self._power_record_armed:
            self._power_record_armed = False
            breakdown.add(self.power_store.clear(timed=True))

    # ------------------------------------------------------------------
    # Crash, power-down, recovery
    # ------------------------------------------------------------------

    @property
    def utilization(self) -> float:
        """Physical space utilization in [0, 1]."""
        return self.freemap.utilization

    def power_down(self, timed: bool = True) -> Breakdown:
        """Orderly shutdown: persist the log tail at the fixed location."""
        breakdown = self.scheduler.barrier()  # nothing may outlive the queue
        if self.vlog.tail is None:
            return breakdown
        self._power_record_armed = True
        breakdown.add(
            self.power_store.write(
                self.vlog.tail, self.vlog.next_seqno - 1, timed
            )
        )
        return breakdown

    def _record_reader(self, timed: bool, dead_runs=None):
        """Fault-tolerant record reader for the recovery traversal:
        ``None`` for a run that stays unreadable after retries (the run
        is noted in ``dead_runs`` when given, for post-rebuild
        conservative quarantine)."""
        resilience = self.resilience
        assert resilience is not None

        def reader(sector: int, count: int, breakdown: Breakdown):
            try:
                return resilience.read_sectors(
                    sector, count, breakdown, timed=timed
                )
            except MediaError:
                if dead_runs is not None:
                    dead_runs.append((sector, count))
                return None

        return reader

    def _track_reader(self, timed: bool, dead_runs=None):
        """Fault-tolerant *track* reader for the scan paths: a failed
        track read is re-driven record by record, zero-filling only the
        runs that stay dead, so one bad sector costs one record, not a
        whole track of them."""
        resilience = self.resilience
        assert resilience is not None
        record_sectors = self.map_record_bytes // self.disk.sector_bytes
        sector_bytes = self.disk.sector_bytes

        def reader(sector: int, count: int, breakdown: Breakdown):
            try:
                return resilience.read_sectors(
                    sector, count, breakdown, timed=timed
                )
            except MediaError:
                pieces: List[bytes] = []
                for offset in range(0, count, record_sectors):
                    piece = min(record_sectors, count - offset)
                    try:
                        pieces.append(
                            resilience.read_sectors(
                                sector + offset,
                                piece,
                                breakdown,
                                timed=timed,
                            )
                        )
                    except MediaError:
                        if dead_runs is not None:
                            dead_runs.append((sector + offset, piece))
                        pieces.append(bytes(piece * sector_bytes))
                return b"".join(pieces)

        return reader

    def recover(self, timed: bool = True) -> RecoveryOutcome:
        """Rebuild all volatile state from the disk (Section 3.2).

        Reads the power-down record; when valid, traverses the virtual log
        from the recorded tail.  Otherwise -- or when the named tail block
        is unreadable or corrupt -- scans the disk for the youngest
        checksummed map record and traverses from there.  With the
        resilience layer, reads retry with backoff, and if any record
        stays unreadable the traversal is escalated to a youngest-wins
        reconstruction over *every* valid record on the disk, so one dead
        map sector costs one chunk's latest update at worst, never the
        tree behind it.
        """
        resilience = self.resilience
        media_errors_before = (
            resilience.media_errors if resilience is not None else 0
        )
        breakdown = self.scheduler.barrier()  # a live recover flushes first
        degraded = False
        skip_sectors = (self.POWER_DOWN_BLOCK + 1) * self.sectors_per_block
        if resilience is not None:
            try:
                raw = resilience.read_sectors(
                    self.power_store._sector,
                    self.power_store.sectors_per_block,
                    breakdown,
                    timed=timed,
                )
                record = self.power_store.parse(raw)
            except MediaError:
                record = None
                degraded = True
        else:
            record, read_cost = self.power_store.read(timed)
            breakdown.add(read_cost)
        #: Sector runs that stayed unreadable during this recovery; after
        #: the space rebuild, dead runs that turn out *stale* (free) are
        #: conservatively quarantined -- the case that matters is the
        #: youngest QUARANTINE record dying on scan, whose own sectors
        #: must not be silently returned to the allocator.
        dead_runs: List[Tuple[int, int]] = []
        record_reader = (
            self._record_reader(timed, dead_runs)
            if resilience is not None else None
        )
        track_reader = (
            self._track_reader(timed, dead_runs)
            if resilience is not None else None
        )

        def scan():
            return scan_for_tail(
                self.disk,
                self.map_record_bytes,
                skip_sectors=skip_sectors,
                timed=timed,
                reader=track_reader,
            )

        scanned = False
        blocks_scanned = 0
        if record is not None:
            tail = record[0]
        else:
            scanned = True
            tail, scan_cost, blocks_scanned = scan()
            breakdown.add(scan_cost)
        self._power_record_armed = False
        chunks = None
        records_read = 0
        if tail is not None:
            try:
                chunks, traverse_cost, records_read = (
                    self.vlog.recover_from_tail(
                        tail,
                        timed=timed,
                        repair=False,
                        reader=record_reader,
                    )
                )
                breakdown.add(traverse_cost)
            except ValueError:
                # The named tail does not hold a readable map record
                # (stale power-down record, or media failure on the tail
                # block itself): fall back to the scan.  A tail the scan
                # itself produced genuinely parsed moments ago; re-raise
                # rather than loop.
                if scanned:
                    raise
                degraded = True
                scanned = True
                tail, scan_cost, blocks_scanned = scan()
                breakdown.add(scan_cost)
                if tail is not None:
                    chunks, traverse_cost, records_read = (
                        self.vlog.recover_from_tail(
                            tail,
                            timed=timed,
                            repair=False,
                            reader=record_reader,
                        )
                    )
                    breakdown.add(traverse_cost)
        if tail is None:
            # Nothing was ever written: a fresh device.
            self._reset_volatile_state()
            return RecoveryOutcome(
                used_power_down_record=False,
                scanned=scanned,
                records_read=0,
                blocks_scanned=blocks_scanned,
                breakdown=breakdown,
                degraded=degraded,
                media_errors=(
                    resilience.media_errors - media_errors_before
                    if resilience is not None
                    else 0
                ),
            )
        reconstructed = False
        if self.vlog.last_recovery_degraded:
            # An interior record was unreadable: the pruned traversal may
            # have lost whole subtrees.  Escalate to the youngest-wins
            # reconstruction over every valid record on disk.
            degraded = True
            reconstructed = True
            records, scan_cost, examined = scan_records(
                self.disk,
                self.map_record_bytes,
                skip_sectors=skip_sectors,
                timed=timed,
                reader=track_reader,
            )
            breakdown.add(scan_cost)
            chunks, records_read = self.vlog.recover_from_records(
                records, repair=False
            )
            blocks_scanned = max(blocks_scanned, examined)
        assert chunks is not None
        quarantine_chunks = {
            cid: payload
            for cid, payload in chunks.items()
            if cid >= QUARANTINE_CHUNK_BASE
        }
        map_chunks = {
            cid: payload
            for cid, payload in chunks.items()
            if cid < QUARANTINE_CHUNK_BASE
        }
        self.imap.load_chunks(map_chunks)
        if resilience is not None:
            # Install the quarantine *before* the space rebuild: the
            # blanket mark_free below then skips retired sectors itself.
            resilience.load_quarantine(quarantine_chunks)
        self._rebuild_space_state()
        # Conservative quarantine: a sector that stayed unreadable during
        # recovery and is *free* in the rebuilt map holds only stale data
        # (e.g. a superseded -- or the lost youngest -- quarantine
        # record).  Nothing will ever re-read it, so no later access
        # would re-discover the defect: retire it now, before the
        # allocator can hand it out.  Dead sectors that are *live* keep
        # their data reachable and are queued as suspects instead, for
        # the scrubber's salvage-then-migrate path.
        conservatively_quarantined = 0
        if resilience is not None and dead_runs:
            for run_start, run_count in dead_runs:
                for s in range(run_start, run_start + run_count):
                    if self.freemap.is_quarantined(s):
                        continue
                    if self.freemap.is_free(s):
                        if resilience.quarantine_sector(s):
                            conservatively_quarantined += 1
                    else:
                        resilience.note_suspect(s)
            breakdown.add(resilience.persist_quarantine(timed))
        # Reachability repair was deferred past the space rebuild: its
        # relocation appends allocate blocks, which is only safe once the
        # free map knows where the recovered live data sits.
        breakdown.add(self.vlog.repair_reachability())
        breakdown.add(self.power_store.clear(timed))
        return RecoveryOutcome(
            used_power_down_record=record is not None,
            scanned=scanned,
            records_read=records_read,
            blocks_scanned=blocks_scanned,
            breakdown=breakdown,
            degraded=degraded,
            reconstructed=reconstructed,
            media_errors=(
                resilience.media_errors - media_errors_before
                if resilience is not None
                else 0
            ),
            quarantined_sectors=(
                len(resilience.quarantine) if resilience is not None else 0
            ),
            conservatively_quarantined=conservatively_quarantined,
        )

    def crash(self) -> None:
        """Abrupt failure: volatile state is lost; the disk image remains.

        Call :meth:`recover` afterwards to resume service.  (The power-down
        record is *not* written -- and any stale record from an earlier
        orderly shutdown would have been cleared at recovery, so a crash
        after normal operation forces the scan path unless the firmware
        managed the residual-power write, which callers model by invoking
        :meth:`power_down` first.)
        """
        # Queued writes never reached the media: they are simply gone.
        self.scheduler.discard_pending()
        self._reset_volatile_state()

    def _reset_volatile_state(self) -> None:
        self.imap.load_chunks({})
        self.reverse.clear()
        self.vlog.reset_volatile()
        if self.resilience is not None:
            # Drive RAM is gone: suspects and the in-memory quarantine
            # copy with it.  The table is reloaded from the log during
            # recovery; un-persisted additions are re-discovered by the
            # reads that will hit those sectors again.  (The checksum
            # store survives -- it models out-of-band ECC retained on the
            # media itself.)
            self.resilience.suspects.clear()
            self.resilience.quarantine.load({})
            self.freemap.set_quarantined(())
        self._rebuild_space_state()

    def _rebuild_space_state(self) -> None:
        """Recompute the free map and reverse map from imap + vlog state."""
        geometry = self.disk.geometry
        self.freemap.mark_free(0, geometry.total_sectors)
        self.freemap.mark_used(
            self.POWER_DOWN_BLOCK * self.sectors_per_block,
            self.sectors_per_block,
        )
        self.reverse.clear()
        for lba, physical in self.imap.items():
            self.freemap.mark_used(
                physical * self.sectors_per_block, self.sectors_per_block
            )
            self.reverse[physical] = lba
        for record in self.vlog.live_blocks():
            self.freemap.mark_used(
                record * self.vlog.sectors_per_block,
                self.vlog.sectors_per_block,
            )
