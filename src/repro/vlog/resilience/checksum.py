"""Per-sector checksum sidecar: the "CRC envelope" on every written sector.

Real drives lay down out-of-band ECC bytes alongside each sector in the
same head pass; the host never sees them, pays nothing for them, and the
firmware verifies them on every read.  :class:`ChecksumStore` models that:
:meth:`record` is invoked from inside :meth:`Disk.write`/:meth:`Disk.poke`
(zero simulated time -- the ECC rides the data transfer) and
:meth:`verify` is called only by the resilience layer's read path, so a
VLD without the layer behaves bit-for-bit as before.

The store survives crashes (real ECC is retained on the media with its
sector, so recovery reads are verified too).  Sectors with no recorded
checksum verify clean (an unwritten sector has no integrity claim), which
is also what makes attaching the store to an already-used disk sound.
"""

from __future__ import annotations

import itertools
import zlib
from typing import Dict, List

#: Shared all-zero ``bytes`` objects by length, for content comparisons.
#: The simulator's traffic is overwhelmingly zero-filled -- timing studies
#: do not care about contents -- so "is this payload all zeros?" is one
#: C-level memcmp that replaces a CRC per sector.  Payload sizes are a
#: handful of block-size multiples, so the cache stays tiny.
_ZEROS_BY_LEN: Dict[int, bytes] = {}


def _zeros_of(n: int) -> bytes:
    zeros = _ZEROS_BY_LEN.get(n)
    if zeros is None:
        zeros = _ZEROS_BY_LEN[n] = bytes(n)
    return zeros


class ChecksumStore:
    """CRC32 per physical sector, maintained out-of-band."""

    def __init__(self, sector_bytes: int) -> None:
        if sector_bytes <= 0:
            raise ValueError("sector_bytes must be positive")
        self.sector_bytes = sector_bytes
        self._crcs: Dict[int, int] = {}
        #: CRC of one all-zero sector; every zero sector records this.
        self._zero_crc = zlib.crc32(bytes(sector_bytes)) & 0xFFFFFFFF

    def __len__(self) -> int:
        return len(self._crcs)

    def record(self, sector: int, data: bytes) -> None:
        """Recompute checksums for the sectors ``data`` just overwrote.

        Called from inside every ``Disk.write``, so the common shapes are
        fast-pathed: a single sector skips the slicing machinery, an
        all-zero payload stores the precomputed zero-sector CRC without
        hashing anything, and multi-sector runs land in one batched dict
        update instead of one store per sector.
        """
        sb = self.sector_bytes
        if type(data) is not bytes:
            # memoryview payloads (zero-copy callers): one bulk copy here
            # is cheaper than per-sector sub-view hashing below, and the
            # bytes/bytes compare against the zero cache is a plain memcmp
            # (memoryview comparisons unpack element by element).
            data = bytes(data)
        n = len(data)
        count = n // sb
        if data == _zeros_of(n):
            self.record_zeros(sector, count)
            return
        crc32 = zlib.crc32
        if count == 1 and n == sb:
            self._crcs[sector] = crc32(data) & 0xFFFFFFFF
            return
        view = memoryview(data)
        self._crcs.update(
            (sector + i, crc32(view[i * sb : (i + 1) * sb]) & 0xFFFFFFFF)
            for i in range(count)
        )

    def record_zeros(self, sector: int, count: int) -> None:
        """Record ``count`` sectors of zeros without touching any data:
        the data-less write path (``Disk.write`` with ``data=None``) knows
        its payload is the shared zero page, so every sector stores the
        precomputed zero-sector CRC."""
        if count == 1:
            self._crcs[sector] = self._zero_crc
            return
        self._crcs.update(
            zip(range(sector, sector + count), itertools.repeat(self._zero_crc))
        )

    def recorded(self, sector: int) -> bool:
        return sector in self._crcs

    def forget(self, sector: int, count: int = 1) -> None:
        """Drop checksums (e.g. when a sector is quarantined for good)."""
        for s in range(sector, sector + count):
            self._crcs.pop(s, None)

    def verify(self, sector: int, count: int, data: bytes) -> List[int]:
        """Sectors of ``data`` whose contents contradict their checksum."""
        sb = self.sector_bytes
        if len(data) < count * sb:
            raise ValueError("data shorter than the claimed sector run")
        bad: List[int] = []
        get = self._crcs.get
        span = count * sb
        if data[:span] == _zeros_of(span):
            # Every sector's computed CRC is the zero-sector constant.
            zero_crc = self._zero_crc
            for i in range(count):
                stored = get(sector + i)
                if stored is not None and stored != zero_crc:
                    bad.append(sector + i)
            return bad
        view = memoryview(data)
        for i in range(count):
            stored = get(sector + i)
            if stored is None:
                continue
            if zlib.crc32(view[i * sb : (i + 1) * sb]) & 0xFFFFFFFF != stored:
                bad.append(sector + i)
        return bad


def silently_corrupt(disk, sector: int, count: int = 1) -> None:
    """Fault injection: flip every bit of a sector run *behind the drive's
    back* -- the raw image changes but the recorded checksums do not, so the
    next verified read must notice.  (Writing via :meth:`Disk.poke` would
    dutifully update the checksums, hiding the damage.)"""
    if disk._data is None:
        raise RuntimeError("disk was created with store_data=False")
    sb = disk.sector_bytes
    lo = sector * sb
    hi = lo + count * sb
    disk._data[lo:hi] = bytes(b ^ 0xFF for b in disk._data[lo:hi])
