import pytest

from repro.disk.freemap import FreeSpaceMap
from repro.disk.geometry import DiskGeometry
from repro.disk.specs import ST19101


@pytest.fixture
def geo():
    return DiskGeometry(ST19101, num_cylinders=2)


@pytest.fixture
def fm(geo):
    return FreeSpaceMap(geo)


class TestBookkeeping:
    def test_starts_all_free(self, fm, geo):
        assert fm.free_sectors == geo.total_sectors
        assert fm.utilization == 0.0

    def test_mark_used_updates_counts(self, fm, geo):
        fm.mark_used(0, 8)
        assert fm.free_sectors == geo.total_sectors - 8
        assert fm.track_free_count(0, 0) == 256 - 8
        assert fm.cylinder_free_count(0) == geo.sectors_per_cylinder - 8

    def test_mark_used_idempotent(self, fm, geo):
        fm.mark_used(10)
        fm.mark_used(10)
        assert fm.free_sectors == geo.total_sectors - 1

    def test_mark_free_restores(self, fm, geo):
        fm.mark_used(100, 16)
        fm.mark_free(100, 16)
        assert fm.free_sectors == geo.total_sectors
        assert fm.is_free(100)

    def test_run_is_free(self, fm):
        fm.mark_used(20)
        assert not fm.run_is_free(16, 8)
        assert fm.run_is_free(24, 8)

    def test_out_of_range(self, fm, geo):
        with pytest.raises(ValueError):
            fm.mark_used(geo.total_sectors)
        with pytest.raises(ValueError):
            fm.mark_used(geo.total_sectors - 4, 8)

    def test_utilization_fraction(self, fm, geo):
        fm.mark_used(0, geo.total_sectors // 2)
        assert fm.utilization == pytest.approx(0.5)


class TestRotationalQueries:
    def test_nearest_on_empty_track_is_next_aligned_slot(self, fm, geo):
        gap, sector = fm.nearest_free_run(0, 0, 0.0, 8, align=8)
        assert sector == 0
        assert gap == pytest.approx(0.0)

    def test_nearest_respects_start_slot(self, fm, geo):
        # Head at slot 4: next aligned block boundary is slot 8.
        gap, sector = fm.nearest_free_run(0, 0, 4.0, 8, align=8)
        assert gap == pytest.approx(4.0)
        assert sector == geo.sector_at_angle(0, 0, 8)

    def test_nearest_skips_used_runs(self, fm, geo):
        base = geo.track_start(0, 0)
        # occupy the first 4 aligned runs at angles 0..31 (track 0,0 has
        # zero skew so angle == sector index).
        fm.mark_used(base, 32)
        gap, sector = fm.nearest_free_run(0, 0, 0.0, 8, align=8)
        assert sector == base + 32
        assert gap == pytest.approx(32.0)

    def test_nearest_wraps(self, fm, geo):
        gap, sector = fm.nearest_free_run(0, 0, 250.0, 8, align=8)
        assert gap == pytest.approx(6.0)  # wraps to slot 0
        assert sector == geo.track_start(0, 0)

    def test_full_track_returns_none(self, fm, geo):
        base = geo.track_start(0, 0)
        fm.mark_used(base, 256)
        assert fm.nearest_free_run(0, 0, 0.0, 8, align=8) is None

    def test_no_aligned_run_returns_none(self, fm, geo):
        base = geo.track_start(0, 0)
        # Free only odd-position singles: no aligned run of 8.
        fm.mark_used(base, 256)
        for i in range(0, 256, 2):
            fm.mark_free(base + i)
        assert fm.nearest_free_run(0, 0, 0.0, 8, align=8) is None
        gap, sector = fm.nearest_free_run(0, 0, 0.0, 1, align=1)
        assert gap == pytest.approx(0.0)

    def test_count_exceeding_track_none(self, fm):
        assert fm.nearest_free_run(0, 0, 0.0, 257) is None

    def test_cylinder_query_prefers_current_track(self, fm, geo):
        found = fm.nearest_free_in_cylinder(
            0, 0, 0.0, 8, align=8, head_switch_slots=20.0
        )
        gap, sector, head = found
        assert head == 0
        assert gap == pytest.approx(0.0)

    def test_cylinder_query_switches_when_current_full(self, fm, geo):
        fm.mark_used(geo.track_start(0, 0), 256)
        found = fm.nearest_free_in_cylinder(
            0, 0, 0.0, 8, align=8, head_switch_slots=20.0
        )
        gap, sector, head = found
        assert head != 0
        assert gap >= 20.0  # cannot beat the head-switch penalty

    def test_cylinder_query_none_when_cylinder_full(self, fm, geo):
        for head in range(geo.tracks_per_cylinder):
            fm.mark_used(geo.track_start(0, head), 256)
        assert (
            fm.nearest_free_in_cylinder(0, 0, 0.0, 8, align=8) is None
        )

    def test_free_sector_iter(self, fm, geo):
        base = geo.track_start(1, 2)
        fm.mark_used(base, 256)
        fm.mark_free(base + 7)
        fm.mark_free(base + 100)
        assert list(fm.free_sector_iter(1, 2)) == [base + 7, base + 100]
