"""The update-in-place file system (FFS/Solaris-UFS style).

Semantics matched to the paper's Section 4.3 configuration:

* 4 KB blocks, 1 KB fragments;
* metadata updates are **synchronous**: create and delete each pay
  synchronous inode and directory-block writes, in careful order (inode
  before directory entry on create; entry removal before inode free on
  delete), which is what makes small-file workloads disk-latency-bound on
  an update-in-place disk;
* data writes are asynchronous by default and synchronous when the caller
  passes ``sync=True`` (the ``O_SYNC`` runs of Figures 7 and 8);
* sequential reads trigger prefetching after a run is detected.

The implementation is a real file system: every structure (superblock,
bitmaps, inode tables, directories, indirect blocks) is serialised to the
block device, and a file system can be remounted from the device image.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.blockdev.interface import BlockDevice

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.blockdev.interpose import InterposeOptions
from repro.fs.api import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    FileStat,
    FileSystem,
    FileSystemError,
    IsADirectory,
    NotADirectory,
)
from repro.fs.dirfile import DirectoryBlock
from repro.fs.inode import FileType, INODE_SIZE, Inode, NUM_DIRECT
from repro.fs.path import dirname_basename, split_path
from repro.hosts.specs import HostSpec
from repro.sched.idle import IdleManager
from repro.sim.stats import Breakdown
from repro.ufs.alloc import UFSAllocator
from repro.ufs.buffer_cache import BufferCache
from repro.ufs.layout import Superblock, UFSLayout

_SECTOR = 512


class UFS(FileSystem):
    """An FFS-style update-in-place file system over a block device."""

    def __init__(
        self,
        device: BlockDevice,
        host: HostSpec,
        cache_bytes: int = 8 << 20,
        blocks_per_group: int = 0,
        inodes_per_group: int = 0,
        format_device: bool = True,
        interpose: Optional["InterposeOptions"] = None,
    ) -> None:
        if interpose is not None:
            from repro.blockdev.interpose import wrap_device

            device = wrap_device(device, interpose)
        self.device = device
        self.host = host
        self.clock = device.disk.clock  # both device types carry .disk
        self.block_size = device.block_size
        if blocks_per_group <= 0:
            blocks_per_group = self._default_group_size(device)
        self.cache = BufferCache(device, cache_bytes)
        if format_device:
            self.layout = UFSLayout.design(
                device.num_blocks,
                device.block_size,
                blocks_per_group,
                inodes_per_group,
            )
            self.alloc = UFSAllocator(self.layout, self.cache)
            self._mkfs()
        else:
            raw, _ = device.read_block(0)
            self.layout = UFSLayout(Superblock.unpack(raw))
            self.alloc = UFSAllocator(self.layout, self.cache)
            self.alloc.load(Breakdown())
        #: per-inode dirty data blocks, for fsync.
        self._dirty_blocks: Dict[int, Set[int]] = {}
        #: per-inode sequential read detector: (next expected block, run).
        self._readahead: Dict[int, Tuple[int, int]] = {}
        #: prefetch cluster size in blocks.
        self.prefetch_blocks = 8

    @staticmethod
    def _default_group_size(device: BlockDevice) -> int:
        """One cylinder group per physical cylinder when geometry is known."""
        disk = getattr(device, "disk", None)
        if disk is not None:
            sectors = disk.geometry.sectors_per_cylinder
            return max(64, sectors * disk.sector_bytes // device.block_size)
        return 512

    # ==================================================================
    # mkfs
    # ==================================================================

    def _mkfs(self) -> None:
        sb = self.layout.sb
        self.device.write_block(0, sb.pack())
        self.alloc.initialise()
        # Zero the inode tables so stale data never parses as inodes.
        blank = bytes(self.block_size)
        for group in range(sb.num_groups):
            start = self.layout.itable_start(group)
            self.device.write_blocks(
                start,
                self.layout.itable_blocks,
                blank * self.layout.itable_blocks,
            )
        # Root directory: inode only; its first block is allocated on the
        # first entry insertion.
        root_group = self.layout.group_of_inum(sb.root_inum)
        self.alloc.groups[root_group].inodes.set(
            sb.root_inum % sb.inodes_per_group
        )
        root = Inode(itype=FileType.DIRECTORY, nlink=2)
        self._write_inode(sb.root_inum, root, sync=True, breakdown=Breakdown())
        for group in range(sb.num_groups):
            self.alloc.store_group(group)
        self.cache.flush()

    # ==================================================================
    # Host accounting
    # ==================================================================

    def _start_op(self, blocks: int = 1) -> Breakdown:
        cost = self.host.request_overhead(blocks)
        self.clock.advance(cost)
        breakdown = Breakdown()
        breakdown.charge("other", cost)
        return breakdown

    # ==================================================================
    # Inode I/O
    # ==================================================================

    def _read_inode(self, inum: int, breakdown: Breakdown) -> Inode:
        block, offset = self.layout.inode_position(inum)
        raw, cost = self.cache.read(block)
        breakdown.add(cost)
        return Inode.unpack(raw[offset : offset + INODE_SIZE])

    def _write_inode(
        self, inum: int, inode: Inode, sync: bool, breakdown: Breakdown
    ) -> None:
        """Update an inode in its table block.

        Like the kernel's ``bwrite``, metadata updates write the whole
        file-system block holding the inode: the buffer cache operates at
        block granularity.  (Sub-block *data* writes -- fragments -- do use
        the partial path, which is the VLD bias Section 4.2 describes.)
        """
        block, offset = self.layout.inode_position(inum)
        raw, cost = self.cache.read(block)
        breakdown.add(cost)
        merged = bytearray(raw)
        merged[offset : offset + INODE_SIZE] = inode.pack()
        breakdown.add(self.cache.write(block, bytes(merged), sync=sync))

    # ==================================================================
    # Path resolution
    # ==================================================================

    def _namei(self, parts: List[str], breakdown: Breakdown) -> int:
        inum = self.layout.sb.root_inum
        for name in parts:
            inode = self._read_inode(inum, breakdown)
            if not inode.is_dir:
                raise NotADirectory(f"{name!r}: ancestor is not a directory")
            child = self._dir_lookup(inode, name, breakdown)
            if child is None:
                raise FileNotFound(f"no such file or directory: {name!r}")
            inum = child
        return inum

    def _dir_blocks(
        self, inode: Inode, breakdown: Breakdown
    ) -> Iterable[Tuple[int, int]]:
        """Yield (file block index, lba) of a directory's data blocks."""
        nblocks = -(-inode.size // self.block_size)
        for fblk in range(nblocks):
            lba = self._get_file_block(inode, fblk, breakdown)
            if lba:
                yield fblk, lba

    def _dir_lookup(
        self, inode: Inode, name: str, breakdown: Breakdown
    ) -> Optional[int]:
        for _fblk, lba in self._dir_blocks(inode, breakdown):
            raw, cost = self.cache.read(lba)
            breakdown.add(cost)
            inum = DirectoryBlock.unpack(raw).lookup(name)
            if inum is not None:
                return inum
        return None

    def _dir_add(
        self,
        dir_inum: int,
        inode: Inode,
        name: str,
        child: int,
        breakdown: Breakdown,
    ) -> None:
        """Insert an entry; the directory block write is synchronous."""
        for _fblk, lba in self._dir_blocks(inode, breakdown):
            raw, cost = self.cache.read(lba)
            breakdown.add(cost)
            block = DirectoryBlock.unpack(raw)
            if block.space_for(name):
                block.add(name, child)
                breakdown.add(self.cache.write(lba, block.pack(), sync=True))
                self._touch_inode_async(dir_inum, inode, breakdown)
                return
        # Grow the directory by one block.
        fblk = -(-inode.size // self.block_size)
        lba = self._alloc_near_inode(dir_inum, inode, breakdown)
        self._set_file_block(inode, fblk, lba, breakdown, sync=True)
        block = DirectoryBlock(self.block_size, {name: child})
        breakdown.add(self.cache.write(lba, block.pack(), sync=True))
        inode.size = (fblk + 1) * self.block_size
        self._write_inode(dir_inum, inode, sync=True, breakdown=breakdown)

    def _dir_remove(
        self,
        dir_inum: int,
        inode: Inode,
        name: str,
        breakdown: Breakdown,
    ) -> int:
        for _fblk, lba in self._dir_blocks(inode, breakdown):
            raw, cost = self.cache.read(lba)
            breakdown.add(cost)
            block = DirectoryBlock.unpack(raw)
            if block.lookup(name) is not None:
                child = block.remove(name)
                breakdown.add(self.cache.write(lba, block.pack(), sync=True))
                self._touch_inode_async(dir_inum, inode, breakdown)
                return child
        raise FileNotFound(f"no such entry: {name!r}")

    def _touch_inode_async(
        self, inum: int, inode: Inode, breakdown: Breakdown
    ) -> None:
        inode.mtime = self.clock.now
        self._write_inode(inum, inode, sync=False, breakdown=breakdown)

    def _dir_entry_count(self, inode: Inode, breakdown: Breakdown) -> int:
        count = 0
        for _fblk, lba in self._dir_blocks(inode, breakdown):
            raw, cost = self.cache.read(lba)
            breakdown.add(cost)
            count += len(DirectoryBlock.unpack(raw))
        return count

    # ==================================================================
    # Block mapping (direct / indirect / double indirect)
    # ==================================================================

    @property
    def _ppb(self) -> int:
        return self.block_size // 4

    def _get_file_block(
        self, inode: Inode, fblk: int, breakdown: Breakdown
    ) -> int:
        if fblk < NUM_DIRECT:
            return inode.direct[fblk]
        fblk -= NUM_DIRECT
        if fblk < self._ppb:
            if not inode.indirect:
                return 0
            return self._read_pointer(inode.indirect, fblk, breakdown)
        fblk -= self._ppb
        if not inode.double_indirect:
            return 0
        level1 = self._read_pointer(
            inode.double_indirect, fblk // self._ppb, breakdown
        )
        if not level1:
            return 0
        return self._read_pointer(level1, fblk % self._ppb, breakdown)

    def _read_pointer(
        self, lba: int, index: int, breakdown: Breakdown
    ) -> int:
        raw, cost = self.cache.read(lba)
        breakdown.add(cost)
        return int.from_bytes(raw[index * 4 : index * 4 + 4], "little")

    def _write_pointer(
        self, lba: int, index: int, value: int, sync: bool, breakdown: Breakdown
    ) -> None:
        raw, cost = self.cache.read(lba)
        breakdown.add(cost)
        merged = bytearray(raw)
        merged[index * 4 : index * 4 + 4] = value.to_bytes(4, "little")
        breakdown.add(self.cache.write(lba, bytes(merged), sync=sync))

    def _alloc_indirect(
        self, goal: int, breakdown: Breakdown, sync: bool
    ) -> int:
        lba = self.alloc.alloc_block(goal)
        breakdown.add(
            self.cache.write(lba, bytes(self.block_size), sync=sync)
        )
        self._store_group_async(lba, breakdown)
        return lba

    def _set_file_block(
        self,
        inode: Inode,
        fblk: int,
        lba: int,
        breakdown: Breakdown,
        sync: bool,
    ) -> None:
        if fblk < NUM_DIRECT:
            inode.direct[fblk] = lba
            return
        fblk -= NUM_DIRECT
        if fblk < self._ppb:
            if not inode.indirect:
                inode.indirect = self._alloc_indirect(lba, breakdown, sync)
            self._write_pointer(inode.indirect, fblk, lba, sync, breakdown)
            return
        fblk -= self._ppb
        if not inode.double_indirect:
            inode.double_indirect = self._alloc_indirect(lba, breakdown, sync)
        level1 = self._read_pointer(
            inode.double_indirect, fblk // self._ppb, breakdown
        )
        if not level1:
            level1 = self._alloc_indirect(lba, breakdown, sync)
            self._write_pointer(
                inode.double_indirect, fblk // self._ppb, level1, sync, breakdown
            )
        self._write_pointer(level1, fblk % self._ppb, lba, sync, breakdown)

    def _alloc_near_inode(
        self, inum: int, inode: Inode, breakdown: Breakdown
    ) -> int:
        """Allocate a data block near the inode's group / previous block."""
        goal = 0
        nblocks = -(-inode.size // self.block_size)
        if nblocks:
            prev = self._get_file_block(inode, nblocks - 1, breakdown)
            if prev:
                goal = prev + 1
        if not goal:
            group = self.layout.group_of_inum(inum)
            goal = self.layout.data_start(group)
        lba = self.alloc.alloc_block(goal)
        self._store_group_async(lba, breakdown)
        return lba

    def _store_group_async(self, lba: int, breakdown: Breakdown) -> None:
        group = self.layout.group_of_block(lba)
        breakdown.add(self.alloc.store_group(group))

    # ==================================================================
    # Fragment (tail) handling
    # ==================================================================

    def _uses_tail_frags(self, size: int) -> bool:
        """FFS stores a sub-block tail in fragments only for direct files."""
        if size == 0 or size % self.block_size == 0:
            return False
        return -(-size // self.block_size) <= NUM_DIRECT

    def _tail_geometry(self, size: int) -> Tuple[int, int]:
        """(index of the tail block, fragments needed) for a size."""
        full = size // self.block_size
        remainder = size - full * self.block_size
        frags = -(-remainder // self.layout.frag_size)
        return full, frags

    def _restructure(
        self, inum: int, inode: Inode, new_size: int, breakdown: Breakdown,
        sync: bool,
    ) -> None:
        """Adjust tail-fragment allocation for a growing file."""
        if new_size <= inode.size:
            return
        old_addr, old_count = inode.tail_frags()
        use_new = self._uses_tail_frags(new_size)
        tail_blk_new, frags_new = self._tail_geometry(new_size)
        tail_blk_old, _ = self._tail_geometry(inode.size)
        if old_count:
            same_tail = (
                use_new
                and tail_blk_new == tail_blk_old
                and frags_new <= old_count
            )
            if same_tail:
                return
            # The old tail either becomes a full block or moves/grows.
            old_lba, old_off = self.layout.frag_to_block(old_addr)
            raw, cost = self.cache.read(old_lba)
            breakdown.add(cost)
            content = raw[old_off : old_off + old_count * self.layout.frag_size]
            if use_new and tail_blk_new == tail_blk_old:
                # Grow the run: allocate a bigger one, copy, zero the rest
                # (reads of never-written bytes must return zeros even when
                # the fragments are recycled).
                new_addr = self.alloc.alloc_frags(frags_new, old_lba)
                padded = content + bytes(
                    frags_new * self.layout.frag_size - len(content)
                )
                self._write_frag_content(new_addr, padded, breakdown, sync)
                inode.set_tail_frags(new_addr, frags_new)
            else:
                # Promote to a full block.
                goal = old_lba
                lba = self.alloc.alloc_block(goal)
                padded = content + bytes(self.block_size - len(content))
                breakdown.add(self.cache.write(lba, padded, sync=sync))
                self._set_file_block(
                    inode, tail_blk_old, lba, breakdown, sync
                )
                self._store_group_async(lba, breakdown)
                if use_new:
                    self._alloc_tail(inum, inode, frags_new, breakdown)
                else:
                    inode.set_tail_frags(0, 0)
            self.alloc.free_frags(old_addr, old_count)
            self._store_group_async(old_lba, breakdown)
        elif use_new:
            self._alloc_tail(inum, inode, frags_new, breakdown)

    def _alloc_tail(
        self, inum: int, inode: Inode, frags: int, breakdown: Breakdown
    ) -> None:
        group = self.layout.group_of_inum(inum)
        goal = self.layout.data_start(group)
        addr = self.alloc.alloc_frags(frags, goal)
        inode.set_tail_frags(addr, frags)
        # Fresh fragments start as zeros (they may recycle old contents).
        self._write_frag_content(
            addr, bytes(frags * self.layout.frag_size), breakdown, sync=False
        )
        self._store_group_async(addr // self.layout.frags_per_block, breakdown)

    def _write_frag_content(
        self, frag_addr: int, content: bytes, breakdown: Breakdown, sync: bool
    ) -> None:
        lba, offset = self.layout.frag_to_block(frag_addr)
        breakdown.add(
            self.cache.write_partial(
                lba, offset, content, sync=sync, fresh=True
            )
        )

    # ==================================================================
    # Public API
    # ==================================================================

    def create(self, path: str) -> Breakdown:
        breakdown = self._start_op()
        parents, name = dirname_basename(path)
        dir_inum = self._namei(parents, breakdown)
        dir_inode = self._read_inode(dir_inum, breakdown)
        if not dir_inode.is_dir:
            raise NotADirectory(path)
        if self._dir_lookup(dir_inode, name, breakdown) is not None:
            raise FileExists(path)
        inum = self.alloc.alloc_inode(dir_inum, is_dir=False)
        inode = Inode(itype=FileType.REGULAR, nlink=1, mtime=self.clock.now)
        # FFS ordering: the inode reaches disk before the entry naming it.
        self._write_inode(inum, inode, sync=True, breakdown=breakdown)
        self._dir_add(dir_inum, dir_inode, name, inum, breakdown)
        return breakdown

    def mkdir(self, path: str) -> Breakdown:
        breakdown = self._start_op()
        parents, name = dirname_basename(path)
        dir_inum = self._namei(parents, breakdown)
        dir_inode = self._read_inode(dir_inum, breakdown)
        if not dir_inode.is_dir:
            raise NotADirectory(path)
        if self._dir_lookup(dir_inode, name, breakdown) is not None:
            raise FileExists(path)
        inum = self.alloc.alloc_inode(dir_inum, is_dir=True)
        inode = Inode(itype=FileType.DIRECTORY, nlink=2, mtime=self.clock.now)
        self._write_inode(inum, inode, sync=True, breakdown=breakdown)
        self._dir_add(dir_inum, dir_inode, name, inum, breakdown)
        dir_inode.nlink += 1
        self._write_inode(dir_inum, dir_inode, sync=False, breakdown=breakdown)
        return breakdown

    def unlink(self, path: str) -> Breakdown:
        breakdown = self._start_op()
        parents, name = dirname_basename(path)
        dir_inum = self._namei(parents, breakdown)
        dir_inode = self._read_inode(dir_inum, breakdown)
        inum = self._dir_lookup(dir_inode, name, breakdown)
        if inum is None:
            raise FileNotFound(path)
        inode = self._read_inode(inum, breakdown)
        if inode.is_dir:
            raise IsADirectory(path)
        # FFS ordering: the entry disappears before the inode is freed.
        self._dir_remove(dir_inum, dir_inode, name, breakdown)
        self._free_file_storage(inode, breakdown)
        inode.reset()
        self._write_inode(inum, inode, sync=True, breakdown=breakdown)
        self.alloc.free_inode(inum)
        self._dirty_blocks.pop(inum, None)
        self._readahead.pop(inum, None)
        return breakdown

    def rmdir(self, path: str) -> Breakdown:
        breakdown = self._start_op()
        parents, name = dirname_basename(path)
        dir_inum = self._namei(parents, breakdown)
        dir_inode = self._read_inode(dir_inum, breakdown)
        inum = self._dir_lookup(dir_inode, name, breakdown)
        if inum is None:
            raise FileNotFound(path)
        inode = self._read_inode(inum, breakdown)
        if not inode.is_dir:
            raise NotADirectory(path)
        if self._dir_entry_count(inode, breakdown):
            raise DirectoryNotEmpty(path)
        self._dir_remove(dir_inum, dir_inode, name, breakdown)
        self._free_file_storage(inode, breakdown)
        inode.reset()
        self._write_inode(inum, inode, sync=True, breakdown=breakdown)
        self.alloc.free_inode(inum)
        dir_inode.nlink = max(2, dir_inode.nlink - 1)
        self._write_inode(dir_inum, dir_inode, sync=False, breakdown=breakdown)
        return breakdown

    def rename(self, old_path: str, new_path: str) -> Breakdown:
        """Move an entry between directories (both entry writes are
        synchronous, in remove-last order so the file is never lost)."""
        breakdown = self._start_op()
        old_parents, old_name = dirname_basename(old_path)
        new_parents, new_name = dirname_basename(new_path)
        old_dir = self._namei(old_parents, breakdown)
        old_dir_inode = self._read_inode(old_dir, breakdown)
        inum = self._dir_lookup(old_dir_inode, old_name, breakdown)
        if inum is None:
            raise FileNotFound(old_path)
        new_dir = self._namei(new_parents, breakdown)
        new_dir_inode = self._read_inode(new_dir, breakdown)
        if not new_dir_inode.is_dir:
            raise NotADirectory(new_path)
        if self._dir_lookup(new_dir_inode, new_name, breakdown) is not None:
            raise FileExists(new_path)
        # Add the new entry first, then remove the old one: a crash leaves
        # at worst an extra (hard-link-like) entry, never a lost file.
        self._dir_add(new_dir, new_dir_inode, new_name, inum, breakdown)
        if old_dir == new_dir:
            old_dir_inode = self._read_inode(old_dir, breakdown)
        self._dir_remove(old_dir, old_dir_inode, old_name, breakdown)
        return breakdown

    def truncate(self, path: str, size: int) -> Breakdown:
        if size < 0:
            raise ValueError("size must be non-negative")
        breakdown = self._start_op()
        inum = self._namei(split_path(path), breakdown)
        inode = self._read_inode(inum, breakdown)
        if inode.is_dir:
            raise IsADirectory(path)
        if size > inode.size:
            # Sparse extension: restructure the tail, no data written.
            self._restructure(inum, inode, size, breakdown, sync=False)
            inode.size = size
        elif size < inode.size:
            self._shrink(inum, inode, size, breakdown)
        inode.mtime = self.clock.now
        self._write_inode(inum, inode, sync=True, breakdown=breakdown)
        return breakdown

    def _shrink(
        self, inum: int, inode: Inode, new_size: int, breakdown: Breakdown
    ) -> None:
        if new_size == 0:
            self._free_file_storage(inode, breakdown)
            keep_type, keep_nlink = inode.itype, inode.nlink
            inode.reset()
            inode.itype, inode.nlink = keep_type, keep_nlink
            return
        old_frag_addr, old_frag_count = inode.tail_frags()
        old_tail_blk = inode.size // self.block_size
        use_new = self._uses_tail_frags(new_size)
        tail_blk_new, frags_new = self._tail_geometry(new_size)
        # Free full blocks past the new end (the new tail block, if it
        # is to be demoted to fragments, is handled separately below).
        old_blocks = inode.size // self.block_size
        if not self._uses_tail_frags(inode.size):
            old_blocks = -(-inode.size // self.block_size)
        first_dead = (
            tail_blk_new + 1 if use_new else -(-new_size // self.block_size)
        )
        for fblk in range(first_dead, old_blocks):
            lba = self._get_file_block(inode, fblk, breakdown)
            if lba:
                self.alloc.free_block(lba)
                self.cache.invalidate(lba)
                self._store_group_async(lba, breakdown)
                self._set_file_block(inode, fblk, 0, breakdown, sync=False)
        if use_new and (
            not old_frag_count or tail_blk_new != old_tail_blk
        ):
            # The new tail is currently a full block: demote it to frags.
            tail_lba = self._get_file_block(inode, tail_blk_new, breakdown)
            if old_frag_count:  # old run is past the new end: free it
                self.alloc.free_frags(old_frag_addr, old_frag_count)
                self._store_group_async(
                    old_frag_addr // self.layout.frags_per_block, breakdown
                )
                inode.set_tail_frags(0, 0)
            if tail_lba:
                raw, cost = self.cache.read(tail_lba)
                breakdown.add(cost)
                content = bytearray(raw[: frags_new * self.layout.frag_size])
                valid = new_size - tail_blk_new * self.block_size
                content[valid:] = bytes(len(content) - valid)
                content = bytes(content)
                addr = self.alloc.alloc_frags(frags_new, tail_lba)
                inode.set_tail_frags(addr, frags_new)
                self._write_frag_content(addr, content, breakdown, sync=False)
                self.alloc.free_block(tail_lba)
                self.cache.invalidate(tail_lba)
                self._store_group_async(tail_lba, breakdown)
                self._set_file_block(
                    inode, tail_blk_new, 0, breakdown, sync=False
                )
        elif use_new:
            # Shrinking within the existing tail run.
            keep = min(frags_new, old_frag_count)
            if old_frag_count > keep:
                self.alloc.free_frags(
                    old_frag_addr + keep, old_frag_count - keep
                )
                self._store_group_async(
                    old_frag_addr // self.layout.frags_per_block, breakdown
                )
            inode.set_tail_frags(old_frag_addr, keep)
            # Zero the dead suffix of the kept run.
            valid = new_size - tail_blk_new * self.block_size
            run_bytes = keep * self.layout.frag_size
            if valid < run_bytes:
                lba, offset = self.layout.frag_to_block(old_frag_addr)
                raw, cost = self.cache.read(lba)
                breakdown.add(cost)
                merged = bytearray(
                    raw[offset : offset + run_bytes]
                )
                merged[valid:] = bytes(run_bytes - valid)
                breakdown.add(
                    self.cache.write_partial(
                        lba, offset, bytes(merged), sync=False
                    )
                )
        elif old_frag_count:
            self.alloc.free_frags(old_frag_addr, old_frag_count)
            self._store_group_async(
                old_frag_addr // self.layout.frags_per_block, breakdown
            )
            inode.set_tail_frags(0, 0)
        if not use_new and new_size % self.block_size:
            # Large file keeping a partial last full block: zero its dead
            # suffix so sparse re-extension reads zeros.
            last = new_size // self.block_size
            lba = self._get_file_block(inode, last, breakdown)
            if lba:
                raw, cost = self.cache.read(lba)
                breakdown.add(cost)
                merged = bytearray(raw)
                merged[new_size % self.block_size :] = bytes(
                    self.block_size - new_size % self.block_size
                )
                breakdown.add(
                    self.cache.write(lba, bytes(merged), sync=False)
                )
        inode.size = new_size

    def _free_file_storage(self, inode: Inode, breakdown: Breakdown) -> None:
        nblocks = inode.size // self.block_size
        if not self._uses_tail_frags(inode.size):
            nblocks = -(-inode.size // self.block_size)
        for fblk in range(nblocks):
            lba = self._get_file_block(inode, fblk, breakdown)
            if lba:
                self.alloc.free_block(lba)
                self.cache.invalidate(lba)
                self._store_group_async(lba, breakdown)
        frag_addr, frag_count = inode.tail_frags()
        if frag_count:
            self.alloc.free_frags(frag_addr, frag_count)
            self._store_group_async(
                frag_addr // self.layout.frags_per_block, breakdown
            )
        for indirect in (inode.indirect, inode.double_indirect):
            if indirect:
                self.alloc.free_block(indirect)
                self.cache.invalidate(indirect)
                self._store_group_async(indirect, breakdown)
        if inode.double_indirect:
            for i in range(self._ppb):
                level1 = self._read_pointer(
                    inode.double_indirect, i, breakdown
                )
                if level1:
                    self.alloc.free_block(level1)
                    self.cache.invalidate(level1)

    # ------------------------------------------------------------------

    def write(
        self, path: str, offset: int, data: bytes, sync: bool = False
    ) -> Breakdown:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        nblocks = max(1, -(-len(data) // self.block_size))
        breakdown = self._start_op(nblocks)
        parents = split_path(path)
        inum = self._namei(parents, breakdown)
        inode = self._read_inode(inum, breakdown)
        if inode.is_dir:
            raise IsADirectory(path)
        new_size = max(inode.size, offset + len(data))
        self._restructure(inum, inode, new_size, breakdown, sync)
        use_frags = self._uses_tail_frags(new_size)
        tail_blk, _frags = self._tail_geometry(new_size)
        position = offset
        end = offset + len(data)
        while position < end:
            fblk = position // self.block_size
            block_lo = position % self.block_size
            block_hi = min(self.block_size, block_lo + (end - position))
            piece = data[position - offset : position - offset + (block_hi - block_lo)]
            if use_frags and fblk == tail_blk:
                self._write_tail_piece(
                    inode, block_lo, piece, breakdown, sync
                )
            else:
                self._write_block_piece(
                    inum, inode, fblk, block_lo, piece, breakdown, sync
                )
            position += block_hi - block_lo
        inode.size = new_size
        inode.mtime = self.clock.now
        self._write_inode(inum, inode, sync=sync, breakdown=breakdown)
        return breakdown

    def _write_block_piece(
        self,
        inum: int,
        inode: Inode,
        fblk: int,
        block_lo: int,
        piece: bytes,
        breakdown: Breakdown,
        sync: bool,
    ) -> None:
        lba = self._get_file_block(inode, fblk, breakdown)
        fresh = False
        if not lba:
            lba = self._alloc_near_inode(inum, inode, breakdown)
            self._set_file_block(inode, fblk, lba, breakdown, sync)
            fresh = True
            # A fresh block starts as zeros -- the allocator may hand back
            # a recycled block whose stale contents are still cached.
            self.cache.write(lba, bytes(self.block_size), sync=False)
        if block_lo == 0 and len(piece) == self.block_size:
            breakdown.add(self.cache.write(lba, piece, sync=sync))
        else:
            lo = (block_lo // _SECTOR) * _SECTOR
            hi = min(
                self.block_size,
                -(-(block_lo + len(piece)) // _SECTOR) * _SECTOR,
            )
            if not fresh and lba not in self.cache:
                _, cost = self.cache.read(lba)
                breakdown.add(cost)
            aligned = self._merge_aligned(
                lba, lo, hi, block_lo, piece, fresh, breakdown
            )
            breakdown.add(
                self.cache.write_partial(lba, lo, aligned, sync, fresh=fresh)
            )
        if not sync:
            self._dirty_blocks.setdefault(inum, set()).add(lba)

    def _merge_aligned(
        self,
        lba: int,
        lo: int,
        hi: int,
        block_lo: int,
        piece: bytes,
        fresh: bool,
        breakdown: Breakdown,
    ) -> bytes:
        """Build the sector-aligned byte range [lo, hi) with ``piece``
        spliced in at ``block_lo``."""
        if fresh and lba not in self.cache:
            base = bytearray(hi - lo)
        else:
            raw, cost = self.cache.read(lba)
            breakdown.add(cost)
            base = bytearray(raw[lo:hi])
        start = block_lo - lo
        base[start : start + len(piece)] = piece
        return bytes(base)

    def _write_tail_piece(
        self,
        inode: Inode,
        block_lo: int,
        piece: bytes,
        breakdown: Breakdown,
        sync: bool,
    ) -> None:
        frag_addr, frag_count = inode.tail_frags()
        if not frag_count:
            raise FileSystemError("tail fragments missing (restructure bug)")
        lba, frag_off = self.layout.frag_to_block(frag_addr)
        in_block = frag_off + block_lo
        lo = (in_block // _SECTOR) * _SECTOR
        hi = min(
            frag_off + frag_count * self.layout.frag_size,
            -(-(in_block + len(piece)) // _SECTOR) * _SECTOR,
        )
        if lba not in self.cache:
            _, cost = self.cache.read(lba)
            breakdown.add(cost)
        raw, cost = self.cache.read(lba)
        breakdown.add(cost)
        base = bytearray(raw[lo:hi])
        start = in_block - lo
        base[start : start + len(piece)] = piece
        breakdown.add(
            self.cache.write_partial(lba, lo, bytes(base), sync)
        )

    # ------------------------------------------------------------------

    def read(self, path: str, offset: int, length: int):
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        nblocks = max(1, -(-length // self.block_size))
        breakdown = self._start_op(nblocks)
        parents = split_path(path)
        inum = self._namei(parents, breakdown)
        inode = self._read_inode(inum, breakdown)
        if inode.is_dir:
            raise IsADirectory(path)
        length = max(0, min(length, inode.size - offset))
        if length == 0:
            return b"", breakdown
        use_frags = self._uses_tail_frags(inode.size)
        tail_blk, _ = self._tail_geometry(inode.size)
        pieces: List[bytes] = []
        position = offset
        end = offset + length
        while position < end:
            fblk = position // self.block_size
            block_lo = position % self.block_size
            block_hi = min(self.block_size, block_lo + (end - position))
            if use_frags and fblk == tail_blk:
                pieces.append(
                    self._read_tail_piece(inode, block_lo, block_hi, breakdown)
                )
            else:
                pieces.append(
                    self._read_block_piece(
                        inum, inode, fblk, block_lo, block_hi, breakdown
                    )
                )
            position += block_hi - block_lo
        return b"".join(pieces), breakdown

    def _read_block_piece(
        self,
        inum: int,
        inode: Inode,
        fblk: int,
        lo: int,
        hi: int,
        breakdown: Breakdown,
    ) -> bytes:
        lba = self._get_file_block(inode, fblk, breakdown)
        if not lba:
            return bytes(hi - lo)
        self._maybe_prefetch(inum, inode, fblk, lba, breakdown)
        raw, cost = self.cache.read(lba)
        breakdown.add(cost)
        return raw[lo:hi]

    def _read_tail_piece(
        self, inode: Inode, lo: int, hi: int, breakdown: Breakdown
    ) -> bytes:
        frag_addr, _count = inode.tail_frags()
        lba, frag_off = self.layout.frag_to_block(frag_addr)
        raw, cost = self.cache.read(lba)
        breakdown.add(cost)
        return raw[frag_off + lo : frag_off + hi]

    def _maybe_prefetch(
        self,
        inum: int,
        inode: Inode,
        fblk: int,
        lba: int,
        breakdown: Breakdown,
    ) -> None:
        """Detect sequential reads; prefetch a cluster on the third hit."""
        expected, run = self._readahead.get(inum, (-1, 0))
        run = run + 1 if fblk == expected else 1
        self._readahead[inum] = (fblk + 1, run)
        if run < 3 or lba in self.cache:
            return
        # Find how many of the following file blocks are physically
        # contiguous and read them in one command.
        count = 1
        nblocks = inode.size // self.block_size
        while count < self.prefetch_blocks and fblk + count < nblocks:
            nxt = self._get_file_block(inode, fblk + count, breakdown)
            if nxt != lba + count or nxt in self.cache:
                break
            count += 1
        if count > 1:
            breakdown.add(self.cache.populate_run(lba, count))

    # ------------------------------------------------------------------

    def fsync(self, path: str) -> Breakdown:
        breakdown = self._start_op()
        parents = split_path(path)
        inum = self._namei(parents, breakdown)
        for lba in sorted(self._dirty_blocks.pop(inum, ())):
            breakdown.add(self.cache.flush_block(lba))
        inode = self._read_inode(inum, breakdown)
        self._write_inode(inum, inode, sync=True, breakdown=breakdown)
        return breakdown

    def sync(self) -> Breakdown:
        breakdown = self._start_op()
        breakdown.add(self.alloc.store_all())
        breakdown.add(self.cache.flush())
        self._dirty_blocks.clear()
        return breakdown

    def drop_caches(self) -> None:
        self.cache.drop_clean()
        self._readahead.clear()

    def idle(self, seconds: float) -> Breakdown:
        """UFS has no background machinery; the device gets the idle time
        (on a VLD, the compactor uses it)."""
        return self.idle_manager.grant(seconds)

    @property
    def idle_manager(self) -> IdleManager:
        """Idle-budget dispatch: one worker, the device itself.  The
        device runs even on a zero-second grant (a VLD drains its queue
        and disarms stale state on any idle signal)."""
        mgr = getattr(self, "_idle_manager", None)
        if mgr is None:
            mgr = IdleManager(self.clock)
            mgr.register("device", self._idle_device, needs_time=False)
            self._idle_manager = mgr
        return mgr

    def _idle_device(self, remaining: float) -> None:
        self.device.idle(remaining)

    # ------------------------------------------------------------------

    def stat(self, path: str) -> FileStat:
        breakdown = Breakdown()
        inum = self._namei(split_path(path), breakdown)
        inode = self._read_inode(inum, breakdown)
        frag_addr, frag_count = inode.tail_frags()
        blocks = inode.size // self.block_size + (1 if frag_count else 0)
        if not self._uses_tail_frags(inode.size):
            blocks = -(-inode.size // self.block_size)
        return FileStat(
            inum=inum,
            size=inode.size,
            is_dir=inode.is_dir,
            nlink=inode.nlink,
            blocks=blocks,
        )

    def listdir(self, path: str):
        breakdown = Breakdown()
        inum = self._namei(split_path(path), breakdown)
        inode = self._read_inode(inum, breakdown)
        if not inode.is_dir:
            raise NotADirectory(path)
        names: List[str] = []
        for _fblk, lba in self._dir_blocks(inode, breakdown):
            raw, _ = self.cache.read(lba)
            names.extend(DirectoryBlock.unpack(raw).entries)
        return sorted(names)

    def exists(self, path: str) -> bool:
        try:
            self._namei(split_path(path), Breakdown())
            return True
        except (FileNotFound, NotADirectory):
            return False
