#!/usr/bin/env python3
"""Multi-host overlap on the event engine.

One closed-loop host at queue depth 1 serializes thinking and disk
service: the think/service intervals cannot intersect, so *exactly zero*
think time is hidden (this is the same fact the depth-1 identity tests
pin -- the engine replays the synchronous path).  Add hosts and the
overlap becomes real: while the disk serves one host, the others think,
and the event engine measures that hidden time exactly from the recorded
intervals -- no clock-gap inference.

The demo runs 1 and 4 hosts against one ST19101 (seeded, so the numbers
are reproducible bit-for-bit), prints each report, and shows the p99
response tail growing with contention -- the cost side of the
throughput/overlap win.

Run:  python examples/multihost_demo.py
"""

from repro.disk import ST19101
from repro.hosts import format_report, run_multihost

SEED = 2026
REQUESTS_PER_HOST = 200
THINK_SECONDS = 0.0002


def main() -> None:
    reports = {}
    for hosts in (1, 4):
        print(f"== {hosts} host(s) x 1 disk, closed loop, seeded ==")
        report = run_multihost(
            ST19101,
            hosts=hosts,
            disks=1,
            requests_per_host=REQUESTS_PER_HOST,
            think_seconds=THINK_SECONDS,
            workload="random-update",
            policy="fifo",
            seed=SEED,
        )
        reports[hosts] = report
        print(format_report(report))
        print()

    single, quad = reports[1], reports[4]
    print("== What the event engine makes visible ==")
    print(
        f"  1 host hides {single['hidden_think_seconds']:.4f}s of think "
        f"time -- exactly zero by construction (closed loop, depth 1)"
    )
    print(
        f"  4 hosts hide {quad['hidden_think_seconds']:.4f}s of "
        f"{quad['think_seconds']:.4f}s total think time behind disk service"
    )
    print(
        f"  throughput: {single['requests_per_second']:.0f} -> "
        f"{quad['requests_per_second']:.0f} req/s"
    )
    print(
        f"  the price is the tail: p99 response "
        f"{single['p99_response_ms']:.2f} -> {quad['p99_response_ms']:.2f} ms"
    )


if __name__ == "__main__":
    main()
