"""Oracle tests for the bitmap free-space map.

Two layers of defence for the allocator's hottest path:

* :class:`FreeSpaceMap` (per-track integer bitmasks) is pinned to
  :class:`ReferenceFreeSpaceMap` (the seed's per-sector brute force) for
  arbitrary ``mark_used``/``mark_free`` sequences -- counters, iteration,
  and both rotational queries must agree exactly.
* ``nearest_free_run`` is additionally pinned to an *independent* inline
  brute-force oracle over skewed geometries, including ``align`` values
  that do not divide ``sectors_per_track``.  That regime is where the
  seed implementation's ``gap < align`` early exit was wrong: candidate
  gaps are only pairwise congruent modulo ``align`` when ``align`` divides
  the track size, so a sub-``align`` gap found early need not be the
  angular minimum (see ``test_early_exit_regression`` for the concrete
  counterexample the fix is pinned to).
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk.freemap import FreeSpaceMap, ReferenceFreeSpaceMap
from repro.disk.geometry import DiskGeometry
from repro.disk.specs import DiskSpec

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def tiny_spec(n: int, t: int, cylinders: int, head_switch_slots: int = 3) -> DiskSpec:
    """A small drive with ``head_switch_slots``-ish track skew (the skew
    formula adds one slot, so it is always nonzero)."""
    rpm = 10000.0
    sector_time = (60.0 / rpm) / n
    return DiskSpec(
        name=f"TINY{n}x{t}x{cylinders}",
        sectors_per_track=n,
        tracks_per_cylinder=t,
        num_cylinders=cylinders,
        sim_cylinders=cylinders,
        rpm=rpm,
        head_switch_time=head_switch_slots * sector_time * 0.999,
        scsi_overhead=1e-4,
        sector_bytes=512,
        seek_short_a=3e-4,
        seek_short_b=2e-4,
        seek_long_c=4e-3,
        seek_long_e=8e-7,
        seek_boundary=400,
    )


def brute_force_nearest(freemap, cylinder, head, start_slot, count, align):
    """Independent oracle: enumerate every aligned start and take the
    angular minimum (no early exit, no bit tricks)."""
    geometry = freemap.geometry
    n = geometry.sectors_per_track
    if count > n:
        return None
    base = geometry.track_start(cylinder, head)
    skew = geometry.skew_offset(cylinder, head)
    best = None
    for sect in range(0, n - count + 1, align):
        if not all(
            freemap.is_free(base + sect + i) for i in range(count)
        ):
            continue
        angle = (sect + skew) % n
        gap = (angle - start_slot) % n
        if best is None or gap < best[0]:
            best = (gap, base + sect)
    return best


@st.composite
def marked_freemaps(draw):
    """A small skewed geometry with both map implementations driven through
    the same random mark_used/mark_free sequence."""
    n = draw(st.integers(min_value=4, max_value=24))
    t = draw(st.integers(min_value=1, max_value=4))
    cylinders = draw(st.integers(min_value=1, max_value=3))
    skew_slots = draw(st.integers(min_value=0, max_value=6))
    geometry = DiskGeometry(tiny_spec(n, t, cylinders, skew_slots))
    total = geometry.total_sectors
    fast = FreeSpaceMap(geometry)
    reference = ReferenceFreeSpaceMap(geometry)
    ops = draw(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=total - 1),
                st.integers(min_value=1, max_value=2 * n),
            ),
            max_size=30,
        )
    )
    for free, start, count in ops:
        count = min(count, total - start)
        for fm in (fast, reference):
            if free:
                fm.mark_free(start, count)
            else:
                fm.mark_used(start, count)
    return fast, reference


@given(pair=marked_freemaps())
@_SETTINGS
def test_counters_and_iteration_match_reference(pair):
    fast, reference = pair
    geometry = fast.geometry
    assert fast.free_sectors == reference.free_sectors
    assert fast.utilization == reference.utilization
    for cylinder in range(geometry.num_cylinders):
        assert fast.cylinder_free_count(cylinder) == (
            reference.cylinder_free_count(cylinder)
        )
        for head in range(geometry.tracks_per_cylinder):
            assert fast.track_free_count(cylinder, head) == (
                reference.track_free_count(cylinder, head)
            )
            assert list(fast.free_sector_iter(cylinder, head)) == (
                list(reference.free_sector_iter(cylinder, head))
            )
            for offset in range(geometry.sectors_per_track + 1):
                assert fast.next_used_on_track(cylinder, head, offset) == (
                    reference.next_used_on_track(cylinder, head, offset)
                )
    for sector in range(geometry.total_sectors):
        assert fast.is_free(sector) == reference.is_free(sector)
    assert fast.find_empty_track() == reference.find_empty_track()
    assert fast.tracks_by_free_count() == reference.tracks_by_free_count()


@given(
    pair=marked_freemaps(),
    queries=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10**6),  # cylinder seed
            st.integers(min_value=0, max_value=10**6),  # head seed
            st.floats(
                min_value=0.0, max_value=100.0, allow_nan=False
            ),  # start slot
            st.integers(min_value=1, max_value=26),  # count
            st.integers(min_value=1, max_value=9),  # align
        ),
        min_size=1,
        max_size=10,
    ),
)
@_SETTINGS
def test_rotational_queries_match_reference_and_oracle(pair, queries):
    fast, reference = pair
    geometry = fast.geometry
    n = geometry.sectors_per_track
    for cyl_seed, head_seed, start_slot, count, align in queries:
        cylinder = cyl_seed % geometry.num_cylinders
        head = head_seed % geometry.tracks_per_cylinder
        got = fast.nearest_free_run(cylinder, head, start_slot, count, align)
        assert got == reference.nearest_free_run(
            cylinder, head, start_slot, count, align
        )
        if count <= n:
            assert got == brute_force_nearest(
                reference, cylinder, head, start_slot, count, align
            )
        if got is not None:
            gap, linear = got
            # ``(angle - start_slot) % n`` can round to exactly ``n`` when
            # start_slot is a denormal-sized positive float and the only
            # candidate sits at its own angle -- the true gap is a hair
            # under one revolution and ``n`` is its nearest float.
            assert 0.0 <= gap <= n
            assert fast.run_is_free(linear, count)
            sect = linear - geometry.track_start(cylinder, head)
            assert sect % align == 0
            assert math.isclose(
                (geometry.angle_of(cylinder, head, sect) - start_slot) % n,
                gap,
            )
        assert fast.has_aligned_run(cylinder, head, count, align) == (
            got is not None
        )
        switch = start_slot % 7.0
        assert fast.nearest_free_in_cylinder(
            cylinder, head, start_slot, count, align, switch
        ) == reference.nearest_free_in_cylinder(
            cylinder, head, start_slot, count, align, switch
        )
        assert fast.cylinder_has_run(cylinder, count, align) == (
            reference.cylinder_has_run(cylinder, count, align)
        )


def test_early_exit_regression():
    """The seed's ``gap < align`` early exit, pinned to its counterexample.

    Track of 10 sectors, no skew, all free, ``align=4`` (which does not
    divide 10): from slot 7 the candidates start at sectors 0, 4, 8 with
    gaps 3, 7, 1.  The old code took sector 0 (gap 3 < align) and stopped;
    the true angular minimum is sector 8 at gap 1.
    """
    geometry = DiskGeometry(tiny_spec(10, 1, 1, head_switch_slots=0))
    assert geometry.skew_offset(0, 0) == 0
    for fm in (FreeSpaceMap(geometry), ReferenceFreeSpaceMap(geometry)):
        gap, sector = fm.nearest_free_run(0, 0, 7.0, 1, align=4)
        assert (gap, sector) == (1.0, 8)


def test_run_is_free_spans_track_boundaries():
    geometry = DiskGeometry(tiny_spec(12, 2, 2))
    fm = FreeSpaceMap(geometry)
    assert fm.run_is_free(10, 6)  # sectors 10..15 cross the 12-sector track
    fm.mark_used(13)
    assert not fm.run_is_free(10, 6)
    assert fm.run_is_free(14, 6)
