"""The file buffer cache, optionally non-volatile.

Section 4.4: "MinixUFS employs a file buffer cache of 6.1 MB.  Unless
'sync' operations are issued, all writes are asynchronous.  In some of the
experiments we assume this buffer to be made of NVRAM so that the LFS
configuration can have a similar reliability guarantee as that of the
synchronous systems."

The cache holds whole file system blocks keyed by (inode, file block index)
-- note this is *above* the log, unlike the UFS buffer cache which sits on
device addresses, because log addresses change on every write.  Dirty
blocks are what the segment writer drains on flush.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

#: Cache key: (inode number, file block index or indirect code).
Key = Tuple[int, int]


class _Entry:
    __slots__ = ("data", "dirty")

    def __init__(self, data: bytes, dirty: bool) -> None:
        self.data = data
        self.dirty = dirty


class FileCache:
    """LRU cache of file blocks with dirty tracking.

    When ``nvram=True`` the cache contents survive a :meth:`crash` (the
    paper's NVRAM assumption); otherwise a crash discards everything.
    """

    def __init__(
        self,
        capacity_bytes: int = int(6.1 * 2**20),
        block_size: int = 4096,
        nvram: bool = False,
    ) -> None:
        if capacity_bytes < block_size:
            raise ValueError("cache must hold at least one block")
        self.block_size = block_size
        self.capacity_blocks = capacity_bytes // block_size
        self.nvram = nvram
        self._entries: "OrderedDict[Key, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    @property
    def dirty_blocks(self) -> int:
        return sum(1 for e in self._entries.values() if e.dirty)

    @property
    def total_blocks(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity_blocks

    def would_overflow(self, new_blocks: int) -> bool:
        """Would inserting ``new_blocks`` dirty blocks exceed capacity even
        after evicting every clean block?"""
        return self.dirty_blocks + new_blocks > self.capacity_blocks

    # ------------------------------------------------------------------

    def get(self, key: Key) -> Optional[bytes]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry.data

    def put_clean(self, key: Key, data: bytes) -> None:
        """Install a block read from disk (never clobbers a dirty copy)."""
        entry = self._entries.get(key)
        if entry is not None:
            if not entry.dirty:
                entry.data = data
            self._entries.move_to_end(key)
            return
        self._evict_clean_for(1)
        if len(self._entries) < self.capacity_blocks:
            self._entries[key] = _Entry(data, dirty=False)

    def put_dirty(self, key: Key, data: bytes) -> None:
        """Install a written block; caller must have ensured capacity."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.data = data
            entry.dirty = True
            self._entries.move_to_end(key)
            return
        self._evict_clean_for(1)
        # Capacity is enforced by callers via would_overflow(); a dirty
        # insert is always honoured (transient overflow mirrors the real
        # cache's wired metadata pages).
        self._entries[key] = _Entry(data, dirty=True)

    def mark_clean(self, key: Key) -> None:
        entry = self._entries.get(key)
        if entry is not None:
            entry.dirty = False

    def forget(self, key: Key) -> None:
        self._entries.pop(key, None)

    def forget_inode(self, inum: int) -> None:
        for key in [k for k in self._entries if k[0] == inum]:
            del self._entries[key]

    def dirty_items(self) -> List[Tuple[Key, bytes]]:
        """Dirty blocks, oldest first (stable flush order)."""
        return [
            (key, entry.data)
            for key, entry in self._entries.items()
            if entry.dirty
        ]

    def dirty_items_for(self, inum: int) -> List[Tuple[Key, bytes]]:
        return [
            (key, entry.data)
            for key, entry in self._entries.items()
            if entry.dirty and key[0] == inum
        ]

    def drop_clean(self) -> None:
        for key in [k for k, e in self._entries.items() if not e.dirty]:
            del self._entries[key]

    def crash(self) -> None:
        """Power loss: NVRAM keeps everything, DRAM keeps nothing."""
        if not self.nvram:
            self._entries.clear()

    def _evict_clean_for(self, needed: int) -> None:
        """Evict clean LRU entries until ``needed`` slots exist (best
        effort; dirty entries are never evicted here)."""
        if len(self._entries) + needed <= self.capacity_blocks:
            return
        for key in [k for k, e in self._entries.items() if not e.dirty]:
            del self._entries[key]
            if len(self._entries) + needed <= self.capacity_blocks:
                return

    def __iter__(self) -> Iterator[Key]:
        return iter(self._entries)
