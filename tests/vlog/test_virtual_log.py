"""The tree-structured virtual log: append, overwrite, recycle, recover."""

import random

import pytest

from repro.disk.disk import Disk
from repro.disk.freemap import FreeSpaceMap
from repro.disk.specs import ST19101
from repro.vlog.allocator import AllocationPolicy, EagerAllocator
from repro.vlog.virtual_log import VirtualLog


class Harness:
    """A virtual log over a small disk with a dict of chunk contents."""

    def __init__(self, seed=0):
        self.disk = Disk(ST19101, num_cylinders=3)
        self.freemap = FreeSpaceMap(self.disk.geometry)
        self.allocator = EagerAllocator(
            self.disk, self.freemap, 8, AllocationPolicy.NEAREST
        )
        self.chunks = {}
        self.vlog = VirtualLog(
            self.disk, self.allocator, lambda c: self.chunks[c], 4096
        )
        self.rng = random.Random(seed)

    def write_chunk(self, chunk_id, entries):
        self.chunks[chunk_id] = list(entries)
        return self.vlog.append(chunk_id, self.chunks[chunk_id])


@pytest.fixture
def h():
    return Harness()


class TestAppend:
    def test_first_append_sets_tail(self, h):
        h.write_chunk(0, [1, 2, 3])
        assert h.vlog.tail is not None
        assert h.vlog.location_of(0) == h.vlog.tail

    def test_appends_chain_backwards(self, h):
        h.write_chunk(0, [1])
        first_tail = h.vlog.tail
        h.write_chunk(1, [2])
        assert h.vlog.tail != first_tail
        h.vlog.check_invariants()

    def test_overwrite_recycles_old_block(self, h):
        h.write_chunk(0, [1])
        old = h.vlog.location_of(0)
        h.write_chunk(0, [2])
        assert h.vlog.location_of(0) != old
        assert h.freemap.run_is_free(old * 8, 8)

    def test_one_io_per_overwrite(self, h):
        """Section 3.2: 'overwriting a map entry requires only one disk
        I/O to create the new log tail' (absent orphan overflow)."""
        h.write_chunk(0, [1])
        h.write_chunk(1, [1])
        writes_before = h.disk.writes
        h.write_chunk(0, [2])
        assert h.disk.writes == writes_before + 1

    def test_relocate_moves_record(self, h):
        h.write_chunk(0, [5])
        old = h.vlog.location_of(0)
        h.vlog.relocate(0)
        assert h.vlog.location_of(0) != old
        h.vlog.check_invariants()

    def test_relocate_unknown_chunk_rejected(self, h):
        with pytest.raises(KeyError):
            h.vlog.relocate(42)

    def test_live_blocks_tracks_current_records(self, h):
        for chunk in range(5):
            h.write_chunk(chunk, [chunk])
        assert len(h.vlog.live_blocks()) == 5
        assert h.vlog.chunk_of_block(h.vlog.location_of(3)) == 3
        assert h.vlog.chunk_of_block(999999 % h.disk.total_sectors) in (
            None,
            *range(5),
        )


class TestInvariants:
    def test_random_workload_preserves_invariants(self, h):
        for step in range(400):
            chunk = h.rng.randrange(8)
            h.write_chunk(chunk, [h.rng.randrange(1000)])
            if step % 25 == 0:
                h.vlog.check_invariants()
        h.vlog.check_invariants()

    def test_block_reuse_does_not_resurrect_edges(self, h):
        """A freed record block recycled for a new record must not inherit
        stale in-edges (the bug class the in-edge purge exists for)."""
        for step in range(200):
            h.write_chunk(step % 3, [step])
        h.vlog.check_invariants()
        # Every chunk's location is distinct and live.
        locations = [h.vlog.location_of(c) for c in range(3)]
        assert len(set(locations)) == 3


class TestRecovery:
    def test_recovers_latest_chunk_contents(self, h):
        for step in range(60):
            h.write_chunk(step % 4, [step, step + 1])
        expected = {c: list(h.chunks[c]) for c in range(4)}
        tail = h.vlog.tail
        chunks, _cost, _n = h.vlog.recover_from_tail(tail, timed=False)
        assert chunks == expected

    def test_recovery_rebuilds_operational_state(self, h):
        for step in range(30):
            h.write_chunk(step % 3, [step])
        tail = h.vlog.tail
        h.vlog.recover_from_tail(tail, timed=False)
        h.vlog.check_invariants()
        # The log keeps working after recovery.
        h.write_chunk(1, [999])
        h.vlog.check_invariants()
        chunks, _, _ = h.vlog.recover_from_tail(h.vlog.tail, timed=False)
        assert chunks[1] == [999]

    def test_recovery_ignores_stale_versions(self, h):
        h.write_chunk(0, [1])
        h.write_chunk(1, [2])
        h.write_chunk(0, [3])  # supersedes [1]
        chunks, _, _ = h.vlog.recover_from_tail(h.vlog.tail, timed=False)
        assert chunks[0] == [3]

    def test_recovery_prunes_recycled_blocks(self, h):
        """Pointers into blocks recycled for *data* must be pruned by
        checksum validation."""
        for step in range(40):
            h.write_chunk(step % 4, [step])
        # Smash every free block with garbage, as reuse for data would.
        for block in range(h.disk.total_sectors // 8):
            if h.freemap.run_is_free(block * 8, 8):
                h.disk.poke(block * 8, b"\xcd" * 4096)
        chunks, _, _ = h.vlog.recover_from_tail(h.vlog.tail, timed=False)
        assert chunks == {c: list(h.chunks[c]) for c in range(4)}

    def test_recovery_from_non_record_block_fails(self, h):
        h.write_chunk(0, [1])
        free_block = next(
            b
            for b in range(h.disk.total_sectors // 8)
            if h.freemap.run_is_free(b * 8, 8)
        )
        with pytest.raises(ValueError):
            h.vlog.recover_from_tail(free_block, timed=False)

    def test_timed_recovery_charges_disk_time(self, h):
        for step in range(20):
            h.write_chunk(step % 2, [step])
        before = h.disk.clock.now
        _, cost, records = h.vlog.recover_from_tail(h.vlog.tail, timed=True)
        assert records >= 2
        assert cost.total > 0.0
        assert h.disk.clock.now > before

    def test_recovery_reads_bounded_by_live_records(self, h):
        """Recovery must not scan the disk: reads scale with live records
        (plus pruned stale edges), not device size."""
        for step in range(100):
            h.write_chunk(step % 5, [step])
        reads_before = h.disk.reads
        h.vlog.recover_from_tail(h.vlog.tail, timed=True)
        reads = h.disk.reads - reads_before
        assert reads < 40  # 5 live + pruned frontier, not ~1500 blocks
