import pytest

from repro.sim.clock import SimClock


def test_starts_at_zero():
    assert SimClock().now == 0.0


def test_starts_at_given_time():
    assert SimClock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(-1.0)


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.25)
    assert clock.now == pytest.approx(1.75)


def test_advance_returns_new_time():
    clock = SimClock()
    assert clock.advance(2.0) == pytest.approx(2.0)


def test_negative_advance_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_zero_advance_is_noop():
    clock = SimClock(3.0)
    clock.advance(0.0)
    assert clock.now == 3.0


def test_advance_to_future():
    clock = SimClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_advance_to_past_is_noop():
    clock = SimClock(10.0)
    clock.advance_to(5.0)
    assert clock.now == 10.0


def test_repr_mentions_time():
    assert "1.5" in repr(SimClock(1.5))
