"""fsck: clean file systems pass; injected corruption is caught."""

import random

from repro.sim.stats import Breakdown
from repro.ufs.fsck import fsck


def populate(fs, seed=1, files=30):
    rng = random.Random(seed)
    fs.mkdir("/dir")
    fs.mkdir("/dir/sub")
    for i in range(files):
        parent = rng.choice(["", "/dir", "/dir/sub"])
        name = f"{parent}/f{i:03d}"
        fs.create(name)
        fs.write(name, 0, bytes([i % 251]) * rng.randrange(100, 20000))
    # One big file with indirect blocks.
    fs.create("/big")
    fs.write("/big", 0, bytes(4096) * 300)
    fs.sync()


class TestCleanFilesystems:
    def test_fresh_fs_is_clean(self, ufs):
        report = fsck(ufs)
        assert report.ok, report.errors
        assert report.inodes_checked == 1  # just the root

    def test_populated_fs_is_clean(self, ufs):
        populate(ufs)
        report = fsck(ufs)
        assert report.ok, report.errors
        assert report.files == 31
        assert report.directories == 3  # root + 2
        assert report.blocks_claimed > 300

    def test_clean_after_churn(self, ufs):
        populate(ufs)
        rng = random.Random(2)
        names = [f"/dir/f{i:03d}" for i in range(60, 80)]
        for name in names:
            ufs.create(name)
            ufs.write(name, 0, bytes(2000))
        for name in rng.sample(names, 10):
            ufs.unlink(name)
        ufs.write("/big", 100 * 4096, bytes(4096) * 50)  # grow
        ufs.sync()
        report = fsck(ufs)
        assert report.ok, report.errors

    def test_clean_on_vld(self, ufs_vld):
        populate(ufs_vld, files=15)
        report = fsck(ufs_vld)
        assert report.ok, report.errors

    def test_summary_readable(self, ufs):
        populate(ufs, files=3)
        text = fsck(ufs).summary()
        assert "clean" in text
        assert "inodes" in text


class TestCorruptionDetection:
    def test_orphan_inode(self, ufs):
        populate(ufs, files=5)
        # Allocate an inode behind the file system's back.
        ufs.alloc.groups[0].inodes.set(50)
        from repro.fs.inode import FileType, Inode

        ufs._write_inode(
            50, Inode(itype=FileType.REGULAR, nlink=1), sync=False,
            breakdown=Breakdown(),
        )
        report = fsck(ufs)
        assert any("orphan" in e for e in report.errors)

    def test_entry_to_unallocated_inode(self, ufs):
        populate(ufs, files=5)
        inum = ufs.stat("/f000").inum
        ufs.alloc.free_inode(inum)  # bitmap says free; entry remains
        report = fsck(ufs)
        assert any("unallocated inode" in e for e in report.errors)

    def test_double_claimed_block(self, ufs):
        populate(ufs, files=5)
        a = ufs.stat("/big").inum
        b = ufs.stat("/f001").inum
        inode_a = ufs._read_inode(a, Breakdown())
        inode_b = ufs._read_inode(b, Breakdown())
        # Point b's first block at a's first block.
        inode_b.direct[0] = inode_a.direct[0]
        inode_b.size = 4096 * 2  # force full-block layout
        ufs._write_inode(b, inode_b, sync=False, breakdown=Breakdown())
        report = fsck(ufs)
        assert any("claimed by both" in e for e in report.errors)

    def test_leaked_fragments(self, ufs):
        populate(ufs, files=5)
        ufs.alloc.alloc_frags(2, goal_lba=0)  # allocate and forget
        report = fsck(ufs)
        assert any("leak" in e for e in report.errors)

    def test_block_marked_free_while_in_use(self, ufs):
        populate(ufs, files=5)
        inum = ufs.stat("/big").inum
        inode = ufs._read_inode(inum, Breakdown())
        ufs.alloc.free_block(inode.direct[0])
        report = fsck(ufs)
        assert any("free in the bitmap" in e for e in report.errors)

    def test_free_inode_with_dir_entry_and_bitmap_set(self, ufs):
        populate(ufs, files=5)
        inum = ufs.stat("/f002").inum
        from repro.fs.inode import Inode

        ufs._write_inode(inum, Inode(), sync=False, breakdown=Breakdown())
        report = fsck(ufs)
        assert any("marked free" in e for e in report.errors)

    def test_bad_tail_fragment_count(self, ufs):
        ufs.create("/small")
        ufs.write("/small", 0, b"x" * 1024)
        ufs.sync()
        inum = ufs.stat("/small").inum
        inode = ufs._read_inode(inum, Breakdown())
        addr, _count = inode.tail_frags()
        inode.set_tail_frags(addr, 3)  # size implies 1
        ufs._write_inode(inum, inode, sync=False, breakdown=Breakdown())
        report = fsck(ufs)
        assert any("tail has 3 frags" in e for e in report.errors)
