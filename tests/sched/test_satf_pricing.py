"""SATF predicted-cost vs charged-cost property tests.

The drift this pins: SATF used to price the rotational wait at
``now + (scsi + positioning)`` while the service path advances the clock
as ``(now + scsi) + positioning`` -- two float expressions that differ by
an ulp often enough for the *predicted* access time to disagree with the
*charged* one.  The policy (batch and scalar oracle alike) now prices in
service order, so for single-track requests the prediction must equal
the locate + transfer the disk actually charges when that request is
serviced next -- exactly, not approximately.  Any scalar-vs-vectorized
pricing divergence shows up here at the source.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk.disk import Disk
from repro.disk.specs import HP97560, ST19101
from repro.sched.policies import SATFPolicy
from repro.sched.scheduler import DiskRequest

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_SPECS = {"hp97560": HP97560, "st19101": ST19101}


def _request(disk, sector, count, charge_scsi, seq):
    return DiskRequest(
        "write", sector, count, None, charge_scsi, seq, disk.clock.now
    )


def _single_track_starts(disk, rng_sectors):
    """Clamp random sectors so a ``count``-sector write stays on one track
    (multi-track requests are priced on their first track only -- an
    estimate the property deliberately excludes)."""
    n = disk.geometry.sectors_per_track
    out = []
    for sector, count in rng_sectors:
        offset = sector % n
        if offset + count > n:
            sector -= offset + count - n
        out.append((sector, count))
    return out


@st.composite
def pricing_cases(draw):
    spec_name = draw(st.sampled_from(sorted(_SPECS)))
    head_cyl = draw(st.integers(min_value=0, max_value=5))
    head_head = draw(st.integers(min_value=0, max_value=3))
    start = draw(st.floats(min_value=0.0, max_value=2.0,
                           allow_nan=False, allow_infinity=False))
    raw = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=12,
        )
    )
    return spec_name, head_cyl, head_head, start, raw


class TestPredictionEqualsCharge:
    @given(pricing_cases(), st.booleans())
    @_SETTINGS
    def test_drive_internal_prediction_is_exact(self, case, boundary):
        """For drive-internal (``charge_scsi=False``) single-track
        requests, the predicted cost plus media transfer equals the
        locate + transfer the disk charges for that request, bitwise."""
        spec_name, head_cyl, head_head, start, raw = case
        disk = Disk(_SPECS[spec_name], store_data=False)
        disk.head_cylinder = head_cyl % disk.geometry.num_cylinders
        disk.head_head = head_head % disk.geometry.tracks_per_cylinder
        if boundary:
            # Park the clock one float above a rotation boundary -- the
            # regime the rotational normalization exists for.
            k = 1 + int(start * 1000)
            disk.clock.advance(
                math.nextafter(k * disk.spec.rotation_time, math.inf)
            )
        else:
            disk.clock.advance(start)
        raw = [(s % (disk.total_sectors - 8), c) for s, c in raw]
        pending = [
            _request(disk, sector, count, False, seq)
            for seq, (sector, count) in enumerate(
                _single_track_starts(disk, raw)
            )
        ]
        policy = SATFPolicy()
        chosen = policy.pick(pending, disk)
        predicted = policy.predicted_cost(chosen, disk)
        transfer = disk.mechanics.transfer_time(chosen.count)
        breakdown = disk.write(
            chosen.sector, chosen.count, charge_scsi=False
        )
        assert breakdown.scsi == 0.0
        assert predicted + transfer == breakdown.locate + breakdown.transfer
        assert predicted == breakdown.locate

    @given(pricing_cases())
    @_SETTINGS
    def test_batch_pricing_equals_scalar_oracle(self, case):
        """The vectorized queue pricing must reproduce the scalar oracle
        bit-for-bit for every pending request, host-issued or internal."""
        spec_name, head_cyl, head_head, start, raw = case
        disk = Disk(_SPECS[spec_name], store_data=False)
        disk.head_cylinder = head_cyl % disk.geometry.num_cylinders
        disk.head_head = head_head % disk.geometry.tracks_per_cylinder
        disk.clock.advance(start)
        raw = [(s % (disk.total_sectors - 8), c) for s, c in raw]
        pending = [
            _request(disk, sector, count, seq % 2 == 0, seq)
            for seq, (sector, count) in enumerate(raw)
        ]
        policy = SATFPolicy()
        scsi = disk.spec.scsi_overhead
        costs = disk.batch.price_candidates(
            disk.clock.now,
            disk.head_cylinder,
            disk.head_head,
            [req.sector for req in pending],
            extra_lead=[
                scsi if req.charge_scsi else 0.0 for req in pending
            ],
        )
        for req, cost in zip(pending, costs):
            assert cost == policy.predicted_cost(req, disk)

    @given(pricing_cases())
    @_SETTINGS
    def test_pick_minimizes_predicted_cost(self, case):
        spec_name, head_cyl, head_head, start, raw = case
        disk = Disk(_SPECS[spec_name], store_data=False)
        disk.head_cylinder = head_cyl % disk.geometry.num_cylinders
        disk.head_head = head_head % disk.geometry.tracks_per_cylinder
        disk.clock.advance(start)
        raw = [(s % (disk.total_sectors - 8), c) for s, c in raw]
        pending = [
            _request(disk, sector, count, False, seq)
            for seq, (sector, count) in enumerate(raw)
        ]
        policy = SATFPolicy()
        chosen = policy.pick(pending, disk)
        best = min(
            (policy.predicted_cost(req, disk), req.seq) for req in pending
        )
        assert (policy.predicted_cost(chosen, disk), chosen.seq) == best


class TestServiceOrderPricing:
    def test_scsi_lead_priced_in_service_order(self):
        """Directed pin of the drift fix: find a state where ``now +
        (scsi + positioning)`` and ``(now + scsi) + positioning`` are
        different floats, then check the host-issued prediction tracks
        the service path (which advances the clock stepwise: SCSI first,
        then positioning)."""
        disk = Disk(ST19101, store_data=False)
        geometry = disk.geometry
        mechanics = disk.mechanics
        policy = SATFPolicy()
        scsi = disk.spec.scsi_overhead
        found = False
        for k in range(1, 40_000):
            now = k * 1e-4
            cylinder = k % geometry.num_cylinders
            positioning = disk.batch.positioning_time(0, 0, cylinder, 0)
            if now + (scsi + positioning) == (now + scsi) + positioning:
                continue
            disk.clock.advance(now - disk.clock.now)
            disk.head_cylinder = 0
            disk.head_head = 0
            sector = cylinder * geometry.sectors_per_cylinder
            target = geometry.angle_of(cylinder, 0, 0)
            wait = mechanics.wait_for_slot(
                (disk.clock.now + scsi) + positioning, target
            )
            req = _request(disk, sector, 8, True, 0)
            assert policy.predicted_cost(req, disk) == (
                (scsi + positioning) + wait
            )
            breakdown = disk.write(sector, 8, charge_scsi=True)
            assert breakdown.scsi == scsi
            assert breakdown.locate == positioning + wait
            found = True
            break
        assert found, "no float-divergent (now, positioning) pair found"
