"""The single-cylinder model (Section 2.2, formulas 2-4)."""

import pytest

from repro.disk.specs import HP97560, ST19101
from repro.models.cylinder import (
    cylinder_expected_latency,
    cylinder_expected_skip_sectors,
    single_track_latency,
)
from repro.models.single_track import expected_skip_sectors


class TestModelStructure:
    def test_single_track_cylinder_reduces_to_track_model(self):
        # With t = 1, the geometric expectation E[x] = (1-p)/p should be
        # close to the finite-track formula for large n.
        n, p = 256, 0.3
        value = cylinder_expected_skip_sectors(n, 1, p, 10.0)
        assert value == pytest.approx((1 - p) / p, rel=0.02)

    def test_other_tracks_only_help(self):
        n, t, p, s = 72, 19, 0.1, 12.0
        multi = cylinder_expected_skip_sectors(n, t, p, s)
        single = cylinder_expected_skip_sectors(n, 1, p, s)
        assert multi <= single + 1e-9

    def test_expensive_switch_disables_other_tracks(self):
        """With an enormous head-switch cost, min(x, y) is always x."""
        n, t, p = 72, 19, 0.2
        huge = cylinder_expected_skip_sectors(n, t, p, 10_000.0)
        single = cylinder_expected_skip_sectors(n, 1, p, 0.0)
        assert huge == pytest.approx(single, rel=1e-6)

    def test_free_switch_takes_best_of_both(self):
        n, t, p = 72, 4, 0.1
        free = cylinder_expected_skip_sectors(n, t, p, 0.0)
        single = cylinder_expected_skip_sectors(n, 1, p, 0.0)
        assert free < single

    def test_monotone_in_free_space(self):
        values = [
            cylinder_expected_skip_sectors(72, 19, p / 10, 12.0)
            for p in range(1, 10)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cylinder_expected_skip_sectors(72, 19, 0.0, 12.0)
        with pytest.raises(ValueError):
            cylinder_expected_skip_sectors(72, 19, 0.5, -1.0)
        with pytest.raises(ValueError):
            cylinder_expected_skip_sectors(0, 19, 0.5, 1.0)


class TestFigure1Claims:
    def test_seagate_an_order_of_magnitude_better(self):
        """Figure 1: 'latency has improved by nearly an order of magnitude
        on the newer Seagate disk compared to the HP disk.'"""
        for p in (0.2, 0.5, 0.8):
            hp = cylinder_expected_latency(HP97560, p)
            sg = cylinder_expected_latency(ST19101, p)
            assert hp / sg > 5.0

    def test_far_below_half_rotation(self):
        """Section 2.1: eager writing beats the update-in-place
        half-rotation floor (3 ms on the Seagate, 7 ms on the HP)."""
        assert cylinder_expected_latency(ST19101, 0.2) < 3e-3 / 4
        assert cylinder_expected_latency(HP97560, 0.2) < 7.5e-3 / 2

    def test_sub_100us_at_80_percent_utilization(self):
        """Section 2.1: ~4 sector delay at 80 % utilization translates to
        'less than 100 microseconds' on a 1998 disk."""
        assert cylinder_expected_latency(ST19101, 0.2) < 100e-6

    def test_single_track_helper_consistent(self):
        p = 0.4
        assert single_track_latency(ST19101, p) == pytest.approx(
            expected_skip_sectors(256, p) * ST19101.sector_time
        )
