"""The batched data-movement identity pin: batched path == scalar path.

The batched movement rework (``VirtualLogDisk(batch_movement=True)``,
the default) is only allowed to *batch* work, not to change it: whole
physically contiguous runs are allocated at once, written through single
``Disk.write_run`` calls, and their map updates applied in one pass, but
placement, timing, and the per-block media access sequence must be
bit-for-bit what the scalar per-block path (``batch_movement=False``,
kept as the oracle) produces.  Same discipline as
``tests/harness/test_identity.py`` for the event engine: diff the full
``(op, sector, count, start, end)`` disk call sequence via a recording
shim, every end-state structure, and every scalar the figure pipeline
consumes.

The numpy pricing backend carries the same obligation against the pure
loops, and is pinned here over random geometries (it only engages at
``NUMPY_MIN_BATCH`` candidates, above what the mechanics oracle suite
generates).
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk.batch_mechanics import (
    BatchMechanics,
    HAVE_NUMPY,
    NUMPY_MIN_BATCH,
)
from repro.disk.disk import Disk
from repro.disk.geometry import DiskGeometry
from repro.disk.specs import ST19101
from repro.vlog.vld import VirtualLogDisk
from tests.disk.test_batch_mechanics import tiny_spec

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_NP_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ======================================================================
# Disk call traces
# ======================================================================


class TraceShim:
    """Record every media access as per-block ``(op, sector, count,
    start, end)`` tuples.

    ``write_run`` covers many blocks under one clock advance, so its
    per-block entries carry the run's boundary times only: the first
    block gets the start instant, the last gets the end, interior blocks
    get ``None``.  :func:`masked` blanks the same positions out of a
    scalar trace so the two compare exactly on everything the batched
    trace can claim -- the complete per-block op/sector/count order plus
    every run-boundary clock instant.
    """

    def __init__(self):
        self.calls = []
        real_read, real_write = Disk.read, Disk.write
        real_write_run = Disk.write_run
        self._saved = (real_read, real_write, real_write_run)
        calls = self.calls

        def read(self, sector, count=1, *args, **kwargs):
            start = self.clock.now
            result = real_read(self, sector, count, *args, **kwargs)
            calls.append(("read", sector, count, start, self.clock.now))
            return result

        def write(self, sector, count=1, *args, **kwargs):
            start = self.clock.now
            result = real_write(self, sector, count, *args, **kwargs)
            calls.append(("write", sector, count, start, self.clock.now))
            return result

        def write_run(self, sector, count, block_sectors, *args, **kwargs):
            start = self.clock.now
            before = len(calls)
            result = real_write_run(
                self, sector, count, block_sectors, *args, **kwargs
            )
            if len(calls) > before:
                # Fell back to per-block self.write() (fault injector /
                # misalignment): the shim already logged every block.
                return result
            blocks = count // block_sectors
            end = self.clock.now
            for i in range(blocks):
                calls.append((
                    "write",
                    sector + i * block_sectors,
                    block_sectors,
                    start if i == 0 else None,
                    end if i == blocks - 1 else None,
                ))
            return result

        self._shims = (read, write, write_run)

    def __enter__(self):
        read, write, write_run = self._shims
        Disk.read, Disk.write, Disk.write_run = read, write, write_run
        return self

    def __exit__(self, *exc):
        Disk.read, Disk.write, Disk.write_run = self._saved
        return False

    def take(self):
        trace = list(self.calls)
        self.calls.clear()
        return trace


def masked(scalar_trace, batched_trace):
    """The scalar trace with times blanked where the batched trace has
    ``None`` (interior blocks of a run, whose individual instants the
    single clock advance does not materialize)."""
    out = []
    for entry, ref in zip(scalar_trace, batched_trace):
        op, sector, count, start, end = entry
        out.append((
            op,
            sector,
            count,
            start if ref[3] is not None else None,
            end if ref[4] is not None else None,
        ))
    return out


# ======================================================================
# Workloads
# ======================================================================


def apply_workload(vld, plan):
    """Drive a VLD through a deterministic mixed write/trim/idle plan."""
    for op in plan:
        kind = op[0]
        if kind == "write":
            _, lba, count, payload = op
            vld.write_blocks(lba, count, payload)
        elif kind == "trim":
            _, lba, count = op
            vld.trim(lba, count)
        else:
            vld.idle(op[1])


@st.composite
def workload_plans(draw):
    """(num_cylinders, plan): populate + random runs/overwrites/trims
    with occasional idle (compaction) windows."""
    num_cylinders = draw(st.integers(min_value=3, max_value=6))
    span = draw(st.integers(min_value=48, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rounds = draw(st.integers(min_value=20, max_value=60))
    rng = random.Random(seed)
    block = 4096
    plan = [("write", lba, 1, None) for lba in range(span)]
    for _ in range(rounds):
        roll = rng.random()
        if roll < 0.70:
            count = rng.choice((1, 2, 4, 8, 16))
            lba = rng.randrange(span - count + 1)
            if rng.random() < 0.3:
                payload = rng.randbytes(count * block)
            else:
                payload = None  # the dominant zero-fill traffic
            plan.append(("write", lba, count, payload))
        elif roll < 0.85:
            count = rng.choice((1, 2, 4))
            plan.append(("trim", rng.randrange(span - count + 1), count))
        else:
            plan.append(("idle", rng.uniform(0.005, 0.05)))
    plan.append(("idle", 0.05))
    return num_cylinders, plan


def end_state(vld):
    disk = vld.disk
    return {
        "clock": disk.clock.now,
        "busy": disk.counters.busy_time,
        "writes": disk.counters.writes,
        "sectors_written": disk.counters.sectors_written,
        "head": (disk.head_cylinder, disk.head_head),
        "imap": sorted(vld.imap.items()),
        "reverse": sorted(vld.reverse.items()),
        "free_sectors": vld.freemap.free_sectors,
        "allocs": (vld.allocator.allocations, vld.allocator.fallbacks),
        "moved": vld.compactor.blocks_moved,
        "image": bytes(disk._data),
    }


def run_plan(num_cylinders, plan, batch_movement):
    disk = Disk(ST19101, num_cylinders=num_cylinders)
    vld = VirtualLogDisk(disk, batch_movement=batch_movement)
    apply_workload(vld, plan)
    return vld


# ======================================================================
# The pin
# ======================================================================


class TestBatchedMovementIdentity:
    @given(workload_plans())
    @_SETTINGS
    def test_disk_call_sequence_identical(self, rig):
        """The strongest form: every media access the scalar path makes,
        the batched path makes -- same per-block op/sector/count order,
        same run-boundary clock instants."""
        num_cylinders, plan = rig
        with TraceShim() as shim:
            run_plan(num_cylinders, plan, batch_movement=False)
            scalar = shim.take()
            run_plan(num_cylinders, plan, batch_movement=True)
            batched = shim.take()
        assert len(batched) == len(scalar)
        assert batched == masked(scalar, batched)

    @given(workload_plans())
    @_SETTINGS
    def test_end_state_identical(self, rig):
        """Map, reverse map, free map, counters, clock, head position,
        and the full disk image agree bytewise."""
        num_cylinders, plan = rig
        scalar = end_state(run_plan(num_cylinders, plan, batch_movement=False))
        batched = end_state(run_plan(num_cylinders, plan, batch_movement=True))
        for key in scalar:
            assert batched[key] == scalar[key], key

    def test_read_back_correct_under_queue(self):
        """Batched movement at queue depth 4 under satf (the torture
        smoke's shape).  Scalar identity is a depth-1 contract -- at
        greater depth one run request occupies the queue where the
        scalar path queues per-block requests, so the policy legally
        reorders them differently -- but every logical block must still
        read back exactly what was last written to it, on both paths."""
        block = 4096

        def run(batch_movement):
            disk = Disk(ST19101, num_cylinders=4)
            vld = VirtualLogDisk(
                disk, batch_movement=batch_movement,
                queue_depth=4, sched="satf",
            )
            rng = random.Random(0xD4)
            span = 96
            shadow = {lba: bytes(block) for lba in range(span)}
            for lba in range(span):
                vld.write_blocks(lba, 1)
            for _ in range(80):
                count = rng.choice((1, 4, 8))
                lba = rng.randrange(span - count + 1)
                if rng.random() < 0.4:
                    payload = rng.randbytes(count * block)
                    for i in range(count):
                        shadow[lba + i] = payload[i * block : (i + 1) * block]
                else:
                    payload = None
                    for i in range(count):
                        shadow[lba + i] = bytes(block)
                vld.write_blocks(lba, count, payload)
            vld.idle(0.05)
            for lba in range(span):
                got, _ = vld.read_blocks(lba, 1)
                assert bytes(got) == shadow[lba], (batch_movement, lba)

        run(True)
        run(False)


# ======================================================================
# Figure scalars
# ======================================================================


def _force_scalar_movement(monkeypatch):
    """Make every VLD the harness builds take the scalar oracle path."""
    real_init = VirtualLogDisk.__init__

    def scalar_init(self, *args, **kwargs):
        kwargs["batch_movement"] = False
        real_init(self, *args, **kwargs)

    monkeypatch.setattr(VirtualLogDisk, "__init__", scalar_init)


class TestFigureScalarsIdentical:
    def test_fig6_smallfile_point(self, monkeypatch):
        """The Figure 6 small-file point on the vld stack is byte-equal
        (plain ==, no tolerance) under batched and scalar movement."""
        from repro.harness.experiments import _point_smallfile

        kwargs = dict(
            seed=3, stack="ufs-vld", disk_name="st19101",
            host_name="sparc10", num_files=80,
        )
        batched = _point_smallfile(**kwargs)
        _force_scalar_movement(monkeypatch)
        scalar = _point_smallfile(**kwargs)
        assert batched == scalar

    def test_table2_vld_cell(self, monkeypatch):
        """The Table 2 vld cell (latency + component fractions, the
        Figure 9 inputs) is byte-equal under batched and scalar
        movement."""
        from repro.harness.experiments import _point_table2

        kwargs = dict(
            seed=11, disk_name="st19101", host_name="sparc10",
            device_type="vld", utilization=0.4, updates=60, warmup=20,
            compact_seconds=2.0, from_metrics=True,
        )
        batched = _point_table2(**kwargs)
        _force_scalar_movement(monkeypatch)
        scalar = _point_table2(**kwargs)
        assert batched == scalar


# ======================================================================
# allocate_run contract
# ======================================================================


class TestAllocateRunContract:
    """The documented contract: the first block is exactly ``allocate()``'s
    pick, the run is physically contiguous, every block transitions
    free -> used, and the length is in ``[1, k]``.  (That the *scalar
    write path would have picked the very same blocks in sequence* is
    pinned by the full-trace identity tests above, where the clock
    advances between picks exactly as it does in service.)"""

    @staticmethod
    def _fresh(seed=None, writes=0):
        disk = Disk(ST19101, num_cylinders=3)
        vld = VirtualLogDisk(disk, batch_movement=True)
        if writes:
            rng = random.Random(seed)
            for _ in range(writes):
                vld.write_blocks(rng.randrange(64), 1)
        return vld

    @pytest.mark.parametrize("want", [1, 2, 4, 8, 16])
    @pytest.mark.parametrize("writes", [0, 40])
    def test_first_block_is_the_scalar_pick(self, want, writes):
        vld = self._fresh(seed=want, writes=writes)
        twin = self._fresh(seed=want, writes=writes)
        spb = vld.sectors_per_block
        free_before = vld.freemap.free_sectors
        first, got = vld.allocator.allocate_run(want)
        assert 1 <= got <= want
        assert first == twin.allocator.allocate()
        for i in range(got):
            assert not vld.freemap.is_free((first + i) * spb)
        assert vld.freemap.free_sectors == free_before - got * spb


# ======================================================================
# numpy backend vs pure loops
# ======================================================================


@st.composite
def pricing_rigs(draw):
    """Large candidate sets (>= NUMPY_MIN_BATCH, so the vector backend
    engages) over random skewed geometries and boundary-adversarial
    times -- the same rig family as the mechanics oracle suite, sized up."""
    n = draw(st.integers(min_value=4, max_value=48))
    t = draw(st.integers(min_value=1, max_value=4))
    cylinders = draw(st.integers(min_value=1, max_value=6))
    switch_slots = draw(st.integers(min_value=0, max_value=5))
    spec = tiny_spec(n, t, cylinders, switch_slots)
    geometry = DiskGeometry(spec, cylinders)
    batch = BatchMechanics(spec, geometry)
    head_cyl = draw(st.integers(min_value=0, max_value=cylinders - 1))
    head_head = draw(st.integers(min_value=0, max_value=t - 1))
    rotation = spec.rotation_time
    now = draw(
        st.one_of(
            st.floats(min_value=0.0, max_value=50.0,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=0, max_value=100_000).map(
                lambda k: k * rotation
            ),
            st.integers(min_value=1, max_value=100_000).map(
                lambda k: math.nextafter(k * rotation, math.inf)
            ),
        )
    )
    # Candidate sets are large (the vector backend only engages at
    # NUMPY_MIN_BATCH); drawing them element-wise trips Hypothesis's
    # data-size health check, so draw a seed and expand it instead.
    size = draw(st.integers(min_value=NUMPY_MIN_BATCH, max_value=3 * NUMPY_MIN_BATCH))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    candidates = [
        rng.randrange(geometry.total_sectors) for _ in range(size)
    ]
    return spec, geometry, batch, head_cyl, head_head, now, candidates


def pure_in_chunks(fn, items, chunk, *args, **kwargs):
    """Evaluate through the pure loops by staying under the dispatch
    threshold."""
    out = []
    for i in range(0, len(items), chunk):
        out.extend(fn(items[i : i + chunk], *args, **kwargs))
    return out


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend not active")
class TestNumpyBackendOracle:
    @given(pricing_rigs(), st.booleans(), st.integers(min_value=0, max_value=16))
    @_NP_SETTINGS
    def test_price_candidates_bit_identical(self, rig, with_lead, transfer):
        spec, geometry, batch, head_cyl, head_head, now, cands = rig
        extras = (
            [spec.scsi_overhead if i % 3 else 0.0 for i in range(len(cands))]
            if with_lead
            else None
        )
        vectored = batch.price_candidates(
            now, head_cyl, head_head, cands,
            extra_lead=extras, transfer_sectors=transfer,
        )
        chunk = NUMPY_MIN_BATCH - 1
        pure = []
        for i in range(0, len(cands), chunk):
            pure.extend(
                batch.price_candidates(
                    now, head_cyl, head_head, cands[i : i + chunk],
                    extra_lead=(
                        extras[i : i + chunk] if extras is not None else None
                    ),
                    transfer_sectors=transfer,
                )
            )
        assert vectored == pure

    @given(pricing_rigs())
    @_NP_SETTINGS
    def test_price_track_arrivals_bit_identical(self, rig):
        _, geometry, batch, head_cyl, head_head, now, cands = rig
        tpc = geometry.tracks_per_cylinder
        tracks = [
            (c, h)
            for c in range(geometry.num_cylinders)
            for h in range(tpc)
        ]
        # Pad to the dispatch threshold by cycling (duplicates are legal).
        while len(tracks) < NUMPY_MIN_BATCH:
            tracks.extend(tracks)
        vectored = batch.price_track_arrivals(now, head_cyl, head_head, tracks)
        chunk = NUMPY_MIN_BATCH - 1
        pure = []
        for i in range(0, len(tracks), chunk):
            pure.extend(
                batch.price_track_arrivals(
                    now, head_cyl, head_head, tracks[i : i + chunk]
                )
            )
        assert vectored == pure
