import pytest

from repro.fs.inode import (
    FileType,
    INODE_SIZE,
    Inode,
    NUM_DIRECT,
    max_file_blocks,
    pointers_per_block,
)


class TestSerialisation:
    def test_size_is_fixed(self):
        assert len(Inode().pack()) == INODE_SIZE

    def test_roundtrip(self):
        inode = Inode(
            itype=FileType.REGULAR,
            nlink=2,
            size=123456,
            atime=1.5,
            mtime=2.5,
            generation=9,
            direct=list(range(100, 100 + NUM_DIRECT)),
            indirect=7777,
            double_indirect=8888,
        )
        parsed = Inode.unpack(inode.pack())
        assert parsed == inode

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            Inode.unpack(b"short")

    def test_fresh_inode_is_free(self):
        assert Inode().is_free
        assert not Inode().is_dir

    def test_directory_flag(self):
        assert Inode(itype=FileType.DIRECTORY).is_dir


class TestTailFrags:
    def test_roundtrip(self):
        inode = Inode()
        inode.set_tail_frags(1234, 3)
        assert inode.tail_frags() == (1234, 3)
        parsed = Inode.unpack(inode.pack())
        assert parsed.tail_frags() == (1234, 3)

    def test_zero_count_clears(self):
        inode = Inode()
        inode.set_tail_frags(99, 2)
        inode.set_tail_frags(0, 0)
        assert inode.tail_frags() == (0, 0)


class TestReset:
    def test_reset_clears_everything(self):
        inode = Inode(itype=FileType.REGULAR, nlink=1, size=5000)
        inode.direct[0] = 42
        inode.indirect = 9
        inode.set_tail_frags(3, 1)
        inode.reset()
        assert inode.is_free
        assert inode.size == 0
        assert inode.direct == [0] * NUM_DIRECT
        assert inode.indirect == 0
        assert inode.tail_frags() == (0, 0)


class TestGeometryHelpers:
    def test_pointers_per_block(self):
        assert pointers_per_block(4096) == 1024

    def test_max_file_blocks(self):
        assert max_file_blocks(4096) == 12 + 1024 + 1024 * 1024

    def test_ten_mb_file_addressable(self):
        # Figure 7's workload must fit the inode geometry.
        assert max_file_blocks(4096) * 4096 > 10 * 2**20
