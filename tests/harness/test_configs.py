import pytest

from repro.blockdev.regular import RegularDisk
from repro.harness.configs import (
    STACKS,
    StackConfig,
    build_stack,
    utilization_of,
)
from repro.lfs.lfs import LFS
from repro.ufs.ufs import UFS
from repro.vlog.vld import VirtualLogDisk


class TestBuildStack:
    def test_four_standard_stacks(self):
        assert set(STACKS) == {
            "ufs-regular", "ufs-vld", "lfs-regular", "lfs-vld",
        }

    def test_ufs_regular(self):
        fs, disk, device = build_stack(STACKS["ufs-regular"])
        assert isinstance(fs, UFS)
        assert isinstance(device, RegularDisk)
        assert disk.spec.name == "ST19101"

    def test_ufs_vld(self):
        fs, _disk, device = build_stack(STACKS["ufs-vld"])
        assert isinstance(fs, UFS)
        assert isinstance(device, VirtualLogDisk)

    def test_lfs_variants(self):
        for name in ("lfs-regular", "lfs-vld"):
            fs, _disk, _device = build_stack(STACKS[name])
            assert isinstance(fs, LFS)

    def test_platform_override(self):
        config = STACKS["ufs-regular"].with_platform("hp97560", "ultra170")
        fs, disk, _device = build_stack(config)
        assert disk.spec.name == "HP97560"
        assert fs.host.name == "UltraSPARC-170"

    def test_nvram_flag(self):
        config = StackConfig(
            "x", "lfs", "regular", "st19101", "sparc10", nvram=True
        )
        fs, _disk, _device = build_stack(config)
        assert fs.cache.nvram

    def test_unknown_types_rejected(self):
        with pytest.raises(ValueError):
            build_stack(StackConfig("x", "zfs", "regular"))
        with pytest.raises(ValueError):
            build_stack(StackConfig("x", "ufs", "nvme"))

    def test_vld_uses_full_track_readahead(self):
        """Section 4.2's read-ahead fix must be wired up for VLD stacks."""
        from repro.disk.cache import ReadAheadPolicy

        _fs, disk, _device = build_stack(STACKS["ufs-vld"])
        assert disk.cache.policy is ReadAheadPolicy.FULL_TRACK


class TestUtilization:
    def test_ufs_utilization_grows_with_data(self):
        fs, _disk, device = build_stack(STACKS["ufs-regular"])
        before = utilization_of(fs, device)
        fs.create("/f")
        fs.write("/f", 0, bytes(4096) * 512)
        fs.sync()
        after = utilization_of(fs, device)
        assert after > before
        assert 0.0 <= after <= 1.0

    def test_lfs_utilization_counts_nvram(self):
        config = StackConfig(
            "x", "lfs", "regular", "st19101", "sparc10", nvram=True
        )
        fs, _disk, device = build_stack(config)
        fs.create("/f")
        fs.write("/f", 0, bytes(4096) * 256)  # 1 MB, all in NVRAM
        assert utilization_of(fs, device) > 0.0
