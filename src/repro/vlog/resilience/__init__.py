"""Media-fault resilience for the Virtual Log Disk.

The paper's reliability story (Section 3.2) covers *crashes*; this layer
covers the *medium*: per-sector checksums verified on read, a bounded
retry policy with deterministic backoff, a persistent bad-sector
quarantine integrated with the free map, an idle-time scrubber that
migrates live data off failing sectors, and a ``vlfsck`` invariant
checker.  Everything is out-of-band with respect to simulated time except
retries and scrubbing, so with no faults injected the VLD's timing is
bit-for-bit identical to the layer being absent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.blockdev.interpose import DeviceCrashed, DeviceFault
from repro.sim.stats import Breakdown
from repro.vlog.entries import entries_per_chunk
from repro.vlog.resilience.checker import FsckReport, Violation, vlfsck
from repro.vlog.resilience.checksum import ChecksumStore, silently_corrupt
from repro.vlog.resilience.quarantine import QuarantineTable
from repro.vlog.resilience.retry import MediaError, RetryPolicy
from repro.vlog.resilience.scrubber import MediaScrubber

__all__ = [
    "ChecksumStore",
    "FsckReport",
    "MediaError",
    "MediaScrubber",
    "QuarantineTable",
    "ResilienceController",
    "RetryPolicy",
    "Violation",
    "silently_corrupt",
    "vlfsck",
]


class ResilienceController:
    """Ties checksums, retries, quarantine, and the scrubber to one VLD.

    Created by :class:`~repro.vlog.vld.VirtualLogDisk` when resilience is
    enabled; attaches the checksum sidecar to the disk and owns the
    suspect queue the scrubber drains.
    """

    def __init__(self, vld, policy: Optional[RetryPolicy] = None) -> None:
        self.vld = vld
        self.disk = vld.disk
        self.policy = policy if policy is not None else RetryPolicy()
        self.checksums = ChecksumStore(self.disk.sector_bytes)
        self.disk.checksums = self.checksums
        self.quarantine = QuarantineTable(
            entries_per_chunk(vld.map_record_bytes)
        )
        #: FIFO of sectors that needed a retry or failed a read; volatile
        #: (suspects are re-discovered by the reads that hit them again).
        self.suspects: List[int] = []
        self.media_errors = 0
        self.retries = 0
        self.checksum_failures = 0
        self._scrubber: Optional[MediaScrubber] = None

    @property
    def scrubber(self) -> MediaScrubber:
        """The idle-time scrubber (created on first use)."""
        if self._scrubber is None:
            self._scrubber = MediaScrubber(self)
        return self._scrubber

    # ------------------------------------------------------------------
    # The verified, retried read path
    # ------------------------------------------------------------------

    def read_sectors(
        self,
        sector: int,
        count: int,
        breakdown: Optional[Breakdown] = None,
        timed: bool = True,
    ) -> bytes:
        """Read a sector run with checksum verification and retries.

        Raises :class:`MediaError` when the policy is exhausted; backoff
        pauses are charged as ``locate`` time (the head re-settling).
        ``DeviceCrashed`` is *not* retried -- a dying drive is not a
        marginal sector.
        """
        disk = self.disk
        attempt = 1
        last_fault: Optional[DeviceFault] = None
        while True:
            failed_sector: Optional[int] = None
            data: Optional[bytes] = None
            try:
                if timed:
                    data, cost = disk.read(sector, count, charge_scsi=False)
                    if breakdown is not None:
                        breakdown.add(cost)
                else:
                    data = disk.peek(sector, count)
            except DeviceCrashed:
                raise
            except DeviceFault as fault:
                last_fault = fault
                failed_sector = (
                    fault.sector if fault.sector is not None else sector
                )
            if data is not None:
                bad = self.checksums.verify(sector, count, data)
                if not bad:
                    return data
                self.checksum_failures += 1
                failed_sector = bad[0]
                last_fault = None
            assert failed_sector is not None
            self.note_suspect(failed_sector)
            if attempt >= self.policy.max_attempts:
                self.media_errors += 1
                error = MediaError(
                    f"sector {failed_sector} unreadable after "
                    f"{attempt} attempt(s)",
                    op="read",
                    sector=failed_sector,
                    count=count,
                    attempt=attempt,
                )
                if last_fault is not None:
                    raise error from last_fault
                raise error
            self.retries += 1
            if timed:
                pause = self.policy.backoff(attempt)
                if pause > 0.0:
                    if breakdown is not None:
                        breakdown.charge("locate", pause)
                    disk.clock.advance(pause)
            attempt += 1

    # ------------------------------------------------------------------
    # Quarantine plumbing
    # ------------------------------------------------------------------

    def note_suspect(self, sector: int) -> None:
        """Queue a sector for idle-time scrubbing (idempotent)."""
        if sector in self.quarantine or sector in self.suspects:
            return
        self.suspects.append(sector)

    def quarantine_sector(self, sector: int) -> bool:
        """Retire one sector in both the table and the free map."""
        fresh = self.quarantine.add(sector)
        if fresh:
            self.vld.freemap.quarantine(sector)
            self.checksums.forget(sector)
        return fresh

    def persist_quarantine(self, timed: bool = True) -> Breakdown:
        """Write the quarantine table through the virtual log (no-op when
        the on-disk copy is current)."""
        breakdown = Breakdown()
        if not self.quarantine.dirty:
            return breakdown
        del timed  # appends always run on the drive's clock
        for chunk_id in self.quarantine.chunk_ids():
            breakdown.add(
                self.vld.vlog.append(
                    chunk_id, self.quarantine.chunk_payload(chunk_id)
                )
            )
        self.quarantine.dirty = False
        return breakdown

    def load_quarantine(self, chunks: Dict[int, Iterable[int]]) -> None:
        """Install a recovered quarantine (table + free map), typically
        *before* the space rebuild so the blanket ``mark_free`` skips the
        retired sectors automatically."""
        self.quarantine.load(chunks)
        self.vld.freemap.set_quarantined(self.quarantine.sectors)
