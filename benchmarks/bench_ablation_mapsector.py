"""Ablation: map-record size (512-byte sectors vs whole 4 KB blocks).

Section 3.2 writes "the piece of the table that contains the new map
entry to a free *sector*"; with 4-byte entries the whole map costs ~24 KB
(Section 4.2).  This bench shows why that choice matters: single free
sectors remain easy to place near the head even when aligned 4 KB runs
are scarce, so sector-sized records keep the per-write map overhead low
at high utilization.
"""

from repro.disk.cache import ReadAheadPolicy
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.harness.report import format_table
from repro.hosts.specs import SPARCSTATION_10
from repro.ufs.ufs import UFS
from repro.vlog.vld import VirtualLogDisk
from repro.workloads.random_update import prepare_file, run_random_updates

from .conftest import full_scale, run_once

_MB = 1 << 20


def _run(map_record_bytes):
    disk = Disk(ST19101, readahead=ReadAheadPolicy.FULL_TRACK)
    vld = VirtualLogDisk(disk, map_record_bytes=map_record_bytes)
    fs = UFS(vld, SPARCSTATION_10)
    file_bytes = 16 * _MB  # high utilization: where the choice bites
    prepare_file(fs, "/t", file_bytes)
    updates = 300 if full_scale() else 120
    recorder = run_random_updates(
        fs, "/t", file_bytes, updates, warmup=updates // 3
    )
    return recorder.mean() * 1e3


def test_ablation_map_record_size(benchmark):
    results = run_once(
        benchmark, lambda: {size: _run(size) for size in (512, 4096)}
    )

    print()
    print(
        format_table(
            ["map record size", "latency (ms/4KB)"],
            [[f"{size} B", latency] for size, latency in results.items()],
            title="Ablation: virtual-log map record size "
            "(UFS on VLD @ ~73% utilization)",
        )
    )

    # Sector-sized records must not be slower than block-sized ones; at
    # high utilization they are strictly better.
    assert results[512] <= results[4096] * 1.05
