"""The single-track model: formulas (1)/(6), (8), (9) and their proofs."""

import pytest

from repro.models.single_track import (
    expected_block_locate_sectors,
    expected_skip_recurrence,
    expected_skip_sectors,
)


class TestClosedForm:
    def test_empty_track_never_skips(self):
        assert expected_skip_sectors(72, 1.0) == pytest.approx(0.0)

    def test_full_track_skips_everything(self):
        # p = 0: (1 - 0) n / (1 + 0) = n.
        assert expected_skip_sectors(72, 0.0) == pytest.approx(72.0)

    def test_paper_headline_example(self):
        """Section 2.1: at 80 % utilization (p = 0.2), about four sectors."""
        skips = expected_skip_sectors(72, 0.2)
        assert 3.0 < skips < 4.5

    def test_roughly_occupied_over_free_ratio(self):
        # The paper: "roughly the ratio between occupied and free sectors".
        n, p = 256, 0.25
        ratio = (1 - p) / p
        assert expected_skip_sectors(n, p) == pytest.approx(ratio, rel=0.05)

    def test_monotone_in_free_space(self):
        values = [expected_skip_sectors(72, p / 100) for p in range(1, 100)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_skip_sectors(0, 0.5)
        with pytest.raises(ValueError):
            expected_skip_sectors(72, 1.5)


class TestRecurrence:
    def test_matches_closed_form_exactly(self):
        """Appendix A.1: E(n, k) = (n - k) / (1 + k) solves recurrence (7)."""
        for n in (8, 72, 256):
            for k in (1, 2, n // 4, n // 2, n - 1, n):
                closed = (n - k) / (1 + k)
                assert expected_skip_recurrence(n, k) == pytest.approx(closed)

    def test_matches_probability_formula(self):
        # Substituting k = p*n recovers formula (1).
        n, k = 100, 20
        assert expected_skip_recurrence(n, k) == pytest.approx(
            expected_skip_sectors(n, k / n)
        )

    def test_no_free_sector_rejected(self):
        with pytest.raises(ValueError):
            expected_skip_recurrence(72, 0)


class TestBlockExtension:
    def test_reduces_to_single_sector(self):
        assert expected_block_locate_sectors(72, 0.5, 1, 1) == pytest.approx(
            expected_skip_sectors(72, 0.5)
        )

    def test_matched_sizes_beat_sector_granularity(self):
        """Formula (9)'s punchline: best when physical == logical --
        the reason the VLD uses 4 KB physical blocks (Section 4.2)."""
        n, p, logical = 256, 0.5, 8
        matched = expected_block_locate_sectors(n, p, logical, logical)
        sector_grain = expected_block_locate_sectors(n, p, logical, 1)
        assert matched < sector_grain

    def test_monotone_in_physical_block_size(self):
        n, p, logical = 256, 0.3, 8
        costs = [
            expected_block_locate_sectors(n, p, logical, b)
            for b in (1, 2, 4, 8)
        ]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_physical_larger_than_logical_rejected(self):
        with pytest.raises(ValueError):
            expected_block_locate_sectors(72, 0.5, 4, 8)

    def test_non_divisible_rejected(self):
        with pytest.raises(ValueError):
            expected_block_locate_sectors(72, 0.5, 8, 3)


class TestAgainstMonteCarlo:
    def test_expected_skips_match_random_tracks(self):
        """Brute-force check of formula (8) against random bitmaps."""
        import random

        rng = random.Random(42)
        n, k = 64, 16
        trials = 4000
        total = 0
        for _ in range(trials):
            track = [True] * k + [False] * (n - k)
            rng.shuffle(track)
            start = rng.randrange(n)
            skips = 0
            while not track[(start + skips) % n]:
                skips += 1
            total += skips
        mean = total / trials
        assert mean == pytest.approx(
            expected_skip_recurrence(n, k), rel=0.08
        )
