"""rename/truncate semantics, uniform across UFS, LFS, and VLFS."""

import pytest

from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.fs.api import FileExists, FileNotFound, IsADirectory
from repro.hosts.specs import SPARCSTATION_10
from repro.ufs.fsck import fsck
from repro.vlfs.vlfs import VLFS


def build(kind):
    from repro.blockdev.regular import RegularDisk
    from repro.lfs.lfs import LFS
    from repro.ufs.ufs import UFS

    if kind == "ufs":
        return UFS(RegularDisk(Disk(ST19101)), SPARCSTATION_10)
    if kind == "lfs":
        return LFS(RegularDisk(Disk(ST19101)), SPARCSTATION_10)
    return VLFS(Disk(ST19101), SPARCSTATION_10)


@pytest.fixture(params=["ufs", "lfs", "vlfs"])
def fs(request):
    return build(request.param)


class TestRename:
    def test_simple_rename(self, fs):
        fs.create("/a")
        fs.write("/a", 0, b"payload")
        fs.rename("/a", "/b")
        assert not fs.exists("/a")
        data, _ = fs.read("/b", 0, 7)
        assert data == b"payload"

    def test_rename_across_directories(self, fs):
        fs.mkdir("/src")
        fs.mkdir("/dst")
        fs.create("/src/f")
        fs.write("/src/f", 0, b"x" * 5000)
        fs.rename("/src/f", "/dst/g")
        assert fs.listdir("/src") == []
        assert fs.listdir("/dst") == ["g"]
        data, _ = fs.read("/dst/g", 0, 5000)
        assert data == b"x" * 5000

    def test_rename_directory(self, fs):
        fs.mkdir("/d")
        fs.create("/d/child")
        fs.rename("/d", "/renamed")
        assert fs.exists("/renamed/child")

    def test_rename_missing_source(self, fs):
        with pytest.raises(FileNotFound):
            fs.rename("/ghost", "/b")

    def test_rename_onto_existing_rejected(self, fs):
        fs.create("/a")
        fs.create("/b")
        with pytest.raises(FileExists):
            fs.rename("/a", "/b")

    def test_rename_preserves_inum(self, fs):
        fs.create("/a")
        inum = fs.stat("/a").inum
        fs.rename("/a", "/b")
        assert fs.stat("/b").inum == inum


class TestTruncate:
    def test_shrink(self, fs):
        fs.create("/f")
        fs.write("/f", 0, bytes(range(256)) * 64)  # 16 KB
        fs.truncate("/f", 5000)
        assert fs.stat("/f").size == 5000
        data, _ = fs.read("/f", 0, 10000)
        assert data == (bytes(range(256)) * 64)[:5000]

    def test_shrink_to_zero(self, fs):
        fs.create("/f")
        fs.write("/f", 0, b"x" * 20000)
        fs.truncate("/f", 0)
        assert fs.stat("/f").size == 0
        data, _ = fs.read("/f", 0, 100)
        assert data == b""

    def test_sparse_grow(self, fs):
        fs.create("/f")
        fs.write("/f", 0, b"abc")
        fs.truncate("/f", 10000)
        assert fs.stat("/f").size == 10000
        data, _ = fs.read("/f", 0, 10000)
        assert data[:3] == b"abc"
        assert data[3:] == bytes(9997)

    def test_shrink_then_regrow_reads_zeros(self, fs):
        fs.create("/f")
        fs.write("/f", 0, b"\xff" * 20000)
        fs.truncate("/f", 6000)
        fs.truncate("/f", 20000)
        data, _ = fs.read("/f", 0, 20000)
        assert data[:6000] == b"\xff" * 6000
        assert data[6000:] == bytes(14000)

    def test_truncate_frees_space(self, fs):
        fs.create("/f")
        fs.write("/f", 0, bytes(4096) * 512)  # 2 MB
        fs.sync()
        fs.truncate("/f", 4096)
        fs.sync()
        # Writing another 2 MB must still fit comfortably: space came back.
        fs.create("/g")
        fs.write("/g", 0, bytes(4096) * 512)
        fs.sync()
        data, _ = fs.read("/f", 0, 4096)
        assert len(data) == 4096

    def test_truncate_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.truncate("/d", 0)

    def test_negative_size_rejected(self, fs):
        fs.create("/f")
        with pytest.raises(ValueError):
            fs.truncate("/f", -1)


class TestUfsStructuralIntegrity:
    """UFS-specific: rename/truncate churn stays fsck-clean (fragments,
    bitmaps, indirect blocks)."""

    @pytest.mark.parametrize(
        "sizes",
        [
            (1024, 300),        # frag tail -> smaller frag tail
            (9000, 5000),       # cross-block shrink into frag tail
            (9000, 8192),       # shrink to exact block boundary
            (200_000, 9000),    # indirect blocks freed
            (1024, 100_000),    # frag tail -> sparse big file
            (100_000, 0),       # everything freed
        ],
    )
    def test_truncate_cases_fsck_clean(self, sizes):
        before, after = sizes
        fs = build("ufs")
        fs.create("/t")
        fs.write("/t", 0, b"\xab" * before)
        fs.truncate("/t", after)
        fs.sync()
        report = fsck(fs)
        assert report.ok, report.errors
        data, _ = fs.read("/t", 0, after)
        expected = (b"\xab" * before)[:after]
        expected += bytes(after - len(expected))
        assert data == expected

    def test_rename_churn_fsck_clean(self):
        fs = build("ufs")
        fs.mkdir("/a")
        fs.mkdir("/b")
        for i in range(25):
            fs.create(f"/a/f{i}")
            fs.write(f"/a/f{i}", 0, bytes(i * 100))
        for i in range(0, 25, 2):
            fs.rename(f"/a/f{i}", f"/b/g{i}")
        fs.sync()
        report = fsck(fs)
        assert report.ok, report.errors
