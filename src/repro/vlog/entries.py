"""On-disk format of virtual-log map records.

Each record occupies one physical block and holds one *chunk* of the
indirection map (a run of logical-to-physical entries, 4 bytes each, as in
Section 4.2: "Each physical block requires a four byte map entry") plus the
log-threading pointers of Figure 3:

* ``prev_root`` -- the previous log tail (the backward-chain pointer);
* ``bypass1``/``bypass2`` -- the out-pointers of the record this append
  *overwrote*, so that recycling the overwritten block never disconnects
  older live records from the tail.

The paper's Figure 3b carries a single bypass pointer; because an
overwritten record may itself have been an overwrite root with two
out-edges, we carry both of its pointers forward.  This preserves the exact
graph invariant recovery needs -- removing a node while re-homing *all* its
out-edges keeps every other node reachable -- and is property-tested in
``tests/vlog/test_virtual_log.py``.

Records end with a CRC32 standing in for the paper's "cryptographically
signed map entries": it lets the scan-based recovery path distinguish map
records from data blocks (collisions with random data are possible for a
checksum but not for the real signature; the simulation never manufactures
colliding data).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

#: Map-entry value meaning "logical block not mapped".
UNMAPPED = 0xFFFFFFFF

#: Record magic ("virtual log map, version 1").
MAGIC = b"VLOGMAP1"

#: Chunk ids at or above this value are transaction *commit records*
#: (payload: the committed transaction id).  They ride the same tree as
#: map chunks -- Section 3.2's "base mechanism upon which efficient
#: transactions can be built", made concrete.
COMMIT_CHUNK_BASE = 0x4000_0000

#: Chunk ids in ``[QUARANTINE_CHUNK_BASE, COMMIT_CHUNK_BASE)`` carry the
#: resilience layer's bad-sector quarantine table (payload: quarantined
#: physical sector numbers).  Persisting the table *through the virtual
#: log itself* -- rather than at a second fixed location -- means it
#: inherits the log's crash atomicity and recovery for free, and costs no
#: reserved blocks.  Real indirection-map chunk ids stay far below this
#: (the map covers physical blocks, so ids are bounded by disk capacity).
QUARANTINE_CHUNK_BASE = 0x3000_0000

#: Header: magic, chunk_id, n_entries, seqno, prev_root, bypass1, bypass2,
#: txn_id (0 = not part of a transaction).
_HEADER = struct.Struct("<8sIIqqqqI")

#: Trailing CRC32.
_TRAILER = struct.Struct("<I")


def entries_per_chunk(block_size: int) -> int:
    """Map entries per record for a physical block size, rounded down to a
    multiple of 8 so chunk boundaries align with typical extent sizes."""
    if block_size <= _HEADER.size + _TRAILER.size + 4:
        raise ValueError(f"block size {block_size} too small for a map record")
    raw = (block_size - _HEADER.size - _TRAILER.size) // 4
    return max(8, (raw // 8) * 8)


@dataclass
class MapRecord:
    """One virtual-log entry: a chunk of the indirection map plus pointers.

    Pointer fields hold physical *block* numbers, or ``None``.
    """

    chunk_id: int
    seqno: int
    entries: List[int] = field(default_factory=list)
    prev_root: Optional[int] = None
    bypass1: Optional[int] = None
    bypass2: Optional[int] = None
    #: transaction id this record belongs to (0 = standalone).
    txn_id: int = 0

    @property
    def is_commit(self) -> bool:
        return self.chunk_id >= COMMIT_CHUNK_BASE

    def pointers(self) -> List[int]:
        """All non-null out-pointers, prev_root first."""
        return [
            p
            for p in (self.prev_root, self.bypass1, self.bypass2)
            if p is not None
        ]

    def pack(self, block_size: int) -> bytes:
        """Serialise to exactly ``block_size`` bytes with a trailing CRC."""
        capacity = entries_per_chunk(block_size)
        if len(self.entries) > capacity:
            raise ValueError(
                f"{len(self.entries)} entries exceed capacity {capacity}"
            )
        header = _HEADER.pack(
            MAGIC,
            self.chunk_id,
            len(self.entries),
            self.seqno,
            -1 if self.prev_root is None else self.prev_root,
            -1 if self.bypass1 is None else self.bypass1,
            -1 if self.bypass2 is None else self.bypass2,
            self.txn_id,
        )
        body = struct.pack(f"<{len(self.entries)}I", *self.entries)
        padding = bytes(block_size - len(header) - len(body) - _TRAILER.size)
        payload = header + body + padding
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        return payload + _TRAILER.pack(crc)

    @classmethod
    def unpack(cls, raw: bytes) -> Optional["MapRecord"]:
        """Parse a block; returns ``None`` when it is not a valid record.

        Validation (magic + CRC) is what lets recovery prune pointers into
        recycled blocks and lets the scan fallback find records at all.
        """
        if len(raw) <= _HEADER.size + _TRAILER.size:
            return None
        payload, trailer = raw[: -_TRAILER.size], raw[-_TRAILER.size :]
        (stored_crc,) = _TRAILER.unpack(trailer)
        if zlib.crc32(payload) & 0xFFFFFFFF != stored_crc:
            return None
        magic, chunk_id, n_entries, seqno, prev, b1, b2, txn = (
            _HEADER.unpack(payload[: _HEADER.size])
        )
        if magic != MAGIC:
            return None
        capacity = entries_per_chunk(len(raw))
        if not 0 <= n_entries <= capacity:
            return None
        body = payload[_HEADER.size : _HEADER.size + 4 * n_entries]
        entries = list(struct.unpack(f"<{n_entries}I", body))
        return cls(
            chunk_id=chunk_id,
            seqno=seqno,
            entries=entries,
            prev_root=None if prev < 0 else prev,
            bypass1=None if b1 < 0 else b1,
            bypass2=None if b2 < 0 else b2,
            txn_id=txn,
        )
