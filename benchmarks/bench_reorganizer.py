"""Extension: idle-time read-locality reorganization (Section 3.4).

Figure 7 shows eager writing's price: sequential reads after random
writes collapse.  The paper points at reorganization as the cure without
building it; this bench measures how much of the lost bandwidth the
:class:`ReadReorganizer` recovers.
"""

import random

from repro.disk.cache import ReadAheadPolicy
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.harness.report import format_table
from repro.vlog.reorganizer import ReadReorganizer
from repro.vlog.vld import VirtualLogDisk

from .conftest import full_scale, run_once

_MB = 1 << 20


def _measure():
    nblocks = (8 if full_scale() else 4) * _MB // 4096
    vld = VirtualLogDisk(
        Disk(ST19101, readahead=ReadAheadPolicy.FULL_TRACK)
    )
    rng = random.Random(5)

    def seq_read_bw():
        vld.disk.cache.invalidate()
        start = vld.disk.clock.now
        vld.read_blocks(0, nblocks)
        return (nblocks * 4096 / _MB) / (vld.disk.clock.now - start)

    for lba in range(nblocks):
        vld.write_block(lba, bytes([lba % 251]) * 4096)
    fresh_bw = seq_read_bw()
    for _ in range(2 * nblocks):
        vld.write_block(rng.randrange(nblocks), b"r" * 4096)
    scattered_bw = seq_read_bw()
    reorganizer = ReadReorganizer(vld)
    reorganizer.run_for(30.0)
    reorganized_bw = seq_read_bw()
    return {
        "freshly written": fresh_bw,
        "after random writes": scattered_bw,
        "after reorganization": reorganized_bw,
        "_windows": reorganizer.windows_reorganized,
    }


def test_reorganizer_recovers_sequential_bandwidth(benchmark):
    results = run_once(benchmark, _measure)

    print()
    rows = [
        [state, bw]
        for state, bw in results.items()
        if not state.startswith("_")
    ]
    print(
        format_table(
            ["layout state", "seq read (MB/s)"],
            rows,
            title="Extension: read-locality reorganization on a VLD "
            f"({results['_windows']} windows rewritten)",
        )
    )

    assert results["after random writes"] < results["freshly written"]
    # The reorganizer recovers a large share of the lost bandwidth.
    recovered = results["after reorganization"]
    assert recovered > 1.5 * results["after random writes"]
    assert recovered > 0.6 * results["freshly written"]
