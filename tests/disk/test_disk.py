import pytest

from repro.disk.cache import ReadAheadPolicy
from repro.disk.disk import Disk
from repro.disk.specs import HP97560, ST19101
from repro.sim.clock import SimClock


@pytest.fixture
def disk():
    return Disk(ST19101, SimClock())


class TestDataPath:
    def test_write_then_read_roundtrip(self, disk):
        payload = bytes(range(256)) * 16  # 8 sectors
        disk.write(100, 8, payload)
        data, _ = disk.read(100, 8)
        assert data == payload

    def test_unwritten_sectors_read_zero(self, disk):
        data, _ = disk.read(0, 4)
        assert data == bytes(4 * 512)

    def test_write_without_data_writes_zeros(self, disk):
        disk.poke(50, b"\xff" * 512)
        disk.write(50, 1)
        assert disk.peek(50) == bytes(512)

    def test_length_mismatch_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.write(0, 2, b"short")

    def test_out_of_range_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.read(disk.total_sectors, 1)
        with pytest.raises(ValueError):
            disk.read(disk.total_sectors - 2, 4)

    def test_peek_poke_do_not_advance_time(self, disk):
        before = disk.clock.now
        disk.poke(0, b"a" * 512)
        disk.peek(0)
        assert disk.clock.now == before

    def test_store_data_false_disables_contents(self):
        disk = Disk(ST19101, store_data=False)
        disk.write(0, 1, b"x" * 512)
        with pytest.raises(RuntimeError):
            disk.peek(0)


class TestServiceTiming:
    def test_scsi_overhead_charged_once(self, disk):
        _, breakdown = disk.read(0, 1)
        assert breakdown.scsi == pytest.approx(ST19101.scsi_overhead)

    def test_internal_access_skips_scsi(self, disk):
        _, breakdown = disk.read(0, 1, charge_scsi=False)
        assert breakdown.scsi == 0.0

    def test_clock_advances_by_breakdown_total(self, disk):
        start = disk.clock.now
        breakdown = disk.write(1000, 8)
        assert disk.clock.now - start == pytest.approx(breakdown.total)

    def test_write_includes_transfer(self, disk):
        breakdown = disk.write(0, 8)
        assert breakdown.transfer == pytest.approx(
            8 * ST19101.sector_time
        )

    def test_rotational_wait_under_one_revolution(self, disk):
        breakdown = disk.write(0, 1)  # no seek needed: cylinder 0, head 0
        assert breakdown.locate < ST19101.rotation_time

    def test_seek_charged_for_cylinder_move(self, disk):
        far = disk.geometry.compose(10, 0, 0)
        breakdown = disk.write(far, 1)
        assert breakdown.locate >= ST19101.seek_time(10)
        assert disk.head_cylinder == 10

    def test_sequential_write_is_efficient(self, disk):
        """Skew must keep multi-track sequential transfers near media rate."""
        sectors = disk.geometry.sectors_per_track * 4  # 4 tracks
        breakdown = disk.write(0, sectors)
        media = sectors * ST19101.sector_time
        # Allow one initial rotational wait plus small per-track slack.
        assert breakdown.total < media + ST19101.rotation_time + 4 * (
            ST19101.head_switch_time + 2 * ST19101.sector_time
        )

    def test_random_write_costs_half_rotation_on_average(self, disk):
        """The update-in-place premise of Section 2.1."""
        import random

        rng = random.Random(9)
        total_locate = 0.0
        trials = 200
        for _ in range(trials):
            sector = rng.randrange(disk.total_sectors)
            breakdown = disk.write(sector, 1, charge_scsi=False)
            total_locate += breakdown.locate
        mean = total_locate / trials
        # Half a rotation is 3 ms; seeks add a bit on top.
        assert 0.5 * ST19101.rotation_time * 0.7 < mean < 3 * ST19101.rotation_time

    def test_cached_read_skips_mechanics(self, disk):
        disk.read(0, 4)  # populates the track buffer via read-ahead
        _, second = disk.read(8, 4)
        assert second.locate == 0.0

    def test_write_invalidates_track_buffer(self, disk):
        disk.read(0, 4)
        disk.write(8, 4)
        _, again = disk.read(8, 4)
        assert again.locate > 0.0

    def test_busy_time_accumulates(self, disk):
        disk.read(0, 1)
        disk.write(100, 8)
        assert disk.busy_time == pytest.approx(disk.clock.now)


class TestReadAheadPolicies:
    def test_full_track_policy_serves_lower_addresses(self):
        disk = Disk(ST19101, readahead=ReadAheadPolicy.FULL_TRACK)
        disk.read(100, 4)
        _, breakdown = disk.read(0, 4)  # lower address, same track
        assert breakdown.locate == 0.0

    def test_dartmouth_policy_purges_lower_addresses(self):
        disk = Disk(ST19101, readahead=ReadAheadPolicy.DARTMOUTH)
        disk.read(100, 4)
        disk.read(150, 4)
        _, breakdown = disk.read(0, 4)
        assert breakdown.locate > 0.0


class TestHpModel:
    def test_hp_single_sector_write_slower_than_seagate(self):
        hp = Disk(HP97560)
        sg = Disk(ST19101)
        hp_cost = hp.write(5000, 1).total
        sg_cost = sg.write(5000, 1).total
        assert hp_cost > sg_cost
