"""The overlapped host/disk pipeline.

A closed-loop host alternates between *thinking* (preparing the next
request) and *submitting*.  Without a queue, think time and disk time
serialize; with one, the host thinks while the disk drains its backlog.
:class:`HostPipeline` models that overlap on the simulator's single
clock with the classic pipeline approximation ``max(think, service)``:

* queue empty -- the disk is idle, so host think time is the critical
  path and advances the clock;
* requests outstanding -- the disk is busy for at least one full service
  (atomic in the closed-form engine, and in the sweep's regime much
  longer than a think interval), so the think happens *during* time the
  services already put on the clock and is hidden.

Submission never blocks until the queue reaches ``queue_depth``; at that
point the next submit services one request first -- the host waiting on a
completion.  At ``queue_depth=1`` every submit services synchronously and
the seed's serialized timing is reproduced exactly.  The approximation
overstates overlap when think intervals exceed service times
(``think_hidden_seconds`` reports how much think time was hidden, so a
caller can bound the error).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sched.scheduler import DiskRequest, DiskScheduler
from repro.sim.stats import Breakdown


class HostPipeline:
    """Drives a :class:`DiskScheduler` with host think time overlapped
    against queued request service.

    Args:
        scheduler: The request queue to drive.
        think_seconds: Host compute time preceding each submission.
    """

    def __init__(
        self, scheduler: DiskScheduler, think_seconds: float = 0.0
    ) -> None:
        if think_seconds < 0.0:
            raise ValueError("think time must be non-negative")
        self.scheduler = scheduler
        self.think_seconds = think_seconds
        self.submitted = 0
        #: Think time that overlapped disk service instead of advancing
        #: the clock.
        self.think_hidden_seconds = 0.0

    def _think(self) -> None:
        if self.think_seconds <= 0.0:
            return
        if self.scheduler.outstanding:
            # The disk is mid-backlog: the host's preparation of the next
            # request hides behind service time already on the clock.
            self.think_hidden_seconds += self.think_seconds
            return
        self.scheduler.disk.clock.advance(self.think_seconds)

    def write(
        self,
        sector: int,
        count: int = 1,
        data: Optional[bytes] = None,
        charge_scsi: bool = True,
    ) -> DiskRequest:
        self._think()
        self.submitted += 1
        return self.scheduler.write(sector, count, data, charge_scsi)

    def read(
        self, sector: int, count: int = 1, charge_scsi: bool = True
    ) -> Tuple[bytes, Breakdown]:
        self._think()
        self.submitted += 1
        return self.scheduler.read(sector, count, charge_scsi)

    def finish(self) -> Breakdown:
        """Drain the queue (end of the run: the host stops submitting)."""
        return self.scheduler.drain()
