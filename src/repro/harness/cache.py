"""Content-addressed result cache for sweep points.

Each point's value is stored as one JSON file whose name is the SHA-256
of the *content* that determines the result:

* the point function's fully-qualified name,
* the canonicalized (sorted-key JSON) parameter dict and seed,
* an environment fingerprint combining a **code fingerprint** (a hash
  over every ``.py`` file of the ``repro`` source tree) with a
  **platform-spec fingerprint** (the reprs of every registered disk and
  host spec).

Any source edit, spec change, or parameter change therefore produces a
different key -- stale entries are never *invalidated*, they are simply
never addressed again.  Corrupt, truncated, or mismatched entries are
treated as misses, not errors: the cache can always be rebuilt by
recomputing.

Values must be JSON-serializable; they are canonicalized through a JSON
round-trip on both the put and get paths so cached and freshly computed
results compare equal (tuples become lists, float reprs are exact).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

#: Bump when the on-disk payload layout changes incompatibly.
SCHEMA = 1


@lru_cache(maxsize=None)
def code_fingerprint(root: Optional[str] = None) -> str:
    """Hash every ``.py`` file under ``root`` (default: the ``repro``
    package directory) -- path and contents both contribute."""
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            digest.update(b"\0")
            with open(path, "rb") as fh:
                digest.update(fh.read())
            digest.update(b"\0")
    return digest.hexdigest()


def spec_fingerprint() -> str:
    """Hash the registered disk and host parameter sets (they are frozen
    dataclasses, so ``repr`` covers every field)."""
    from repro.disk.specs import DISKS
    from repro.hosts.specs import HOSTS

    digest = hashlib.sha256()
    for registry in (DISKS, HOSTS):
        for name in sorted(registry):
            digest.update(name.encode())
            digest.update(b"\0")
            digest.update(repr(registry[name]).encode())
            digest.update(b"\0")
    return digest.hexdigest()


def environment_fingerprint() -> str:
    """The combined fingerprint mixed into every cache key."""
    return hashlib.sha256(
        f"{SCHEMA}\0{code_fingerprint()}\0{spec_fingerprint()}".encode()
    ).hexdigest()


def canonicalize(value: Any) -> Any:
    """JSON round-trip, so cached and fresh values compare equal."""
    return json.loads(json.dumps(value))


class ResultCache:
    """A directory of content-addressed sweep-point results.

    Args:
        directory: Where entries live (created lazily on first put).
        fingerprint: Environment fingerprint override; defaults to
            :func:`environment_fingerprint`.  Tests inject explicit
            values to exercise invalidation without editing source.
    """

    def __init__(
        self, directory: str, fingerprint: Optional[str] = None
    ) -> None:
        self.directory = directory
        self.fingerprint = (
            fingerprint if fingerprint is not None
            else environment_fingerprint()
        )
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------

    def key_of(self, fn_name: str, params: Dict[str, Any], seed: int) -> str:
        payload = json.dumps(
            {
                "schema": SCHEMA,
                "fn": fn_name,
                "params": params,
                "seed": seed,
                "env": self.fingerprint,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path_of(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".json")

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(
        self, fn_name: str, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, Any]:
        """``(hit, value)``; any unreadable/corrupt entry is a miss."""
        key = self.key_of(fn_name, params, seed)
        try:
            with open(self._path_of(key), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload["key"] != key or payload["schema"] != SCHEMA:
                raise ValueError("stale or foreign cache entry")
            value = payload["value"]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(
        self, fn_name: str, params: Dict[str, Any], seed: int, value: Any
    ) -> Any:
        """Store (atomically) and return the canonicalized value."""
        key = self.key_of(fn_name, params, seed)
        path = self._path_of(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "schema": SCHEMA,
            "key": key,
            "fn": fn_name,
            "value": value,
        }
        text = json.dumps(payload, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return canonicalize(value)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
