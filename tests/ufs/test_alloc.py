import pytest

from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.fs.api import NoSpace
from repro.sim.stats import Breakdown
from repro.ufs.alloc import UFSAllocator
from repro.ufs.buffer_cache import BufferCache
from repro.ufs.layout import UFSLayout


@pytest.fixture
def alloc():
    device = RegularDisk(Disk(ST19101, num_cylinders=4))
    layout = UFSLayout.design(device.num_blocks, blocks_per_group=512)
    cache = BufferCache(device, 2 << 20)
    allocator = UFSAllocator(layout, cache)
    allocator.initialise()
    return allocator


class TestInodes:
    def test_alloc_free_roundtrip(self, alloc):
        inum = alloc.alloc_inode(parent_inum=1, is_dir=False)
        group = alloc.layout.group_of_inum(inum)
        assert alloc.groups[group].inodes.test(
            inum % alloc.layout.sb.inodes_per_group
        )
        alloc.free_inode(inum)
        assert not alloc.groups[group].inodes.test(
            inum % alloc.layout.sb.inodes_per_group
        )

    def test_file_inode_stays_in_parent_group(self, alloc):
        ipg = alloc.layout.sb.inodes_per_group
        parent = ipg + 5  # an inode in group 1
        inum = alloc.alloc_inode(parent, is_dir=False)
        assert alloc.layout.group_of_inum(inum) == 1

    def test_directories_spread_across_groups(self, alloc):
        ipg = alloc.layout.sb.inodes_per_group
        groups = {
            alloc.layout.group_of_inum(alloc.alloc_inode(1, is_dir=True))
            for _ in range(alloc.layout.sb.num_groups)
        }
        assert len(groups) > 1

    def test_exhaustion_raises(self, alloc):
        total = alloc.layout.total_inodes
        for _ in range(total - 1):  # inode 0 is reserved
            alloc.alloc_inode(1, is_dir=False)
        with pytest.raises(NoSpace):
            alloc.alloc_inode(1, is_dir=False)


class TestBlocks:
    def test_alloc_marks_all_frags(self, alloc):
        lba = alloc.alloc_block(goal_lba=0)
        group = alloc.layout.group_of_block(lba)
        base = (lba - alloc.layout.group_start(group)) * 4
        assert all(alloc.groups[group].frags.test(base + k) for k in range(4))

    def test_alloc_avoids_metadata(self, alloc):
        for _ in range(50):
            lba = alloc.alloc_block(goal_lba=0)
            group = alloc.layout.group_of_block(lba)
            assert lba >= alloc.layout.data_start(group)

    def test_goal_directed_allocation_contiguous(self, alloc):
        first = alloc.alloc_block(goal_lba=0)
        second = alloc.alloc_block(goal_lba=first + 1)
        assert second == first + 1

    def test_free_block(self, alloc):
        lba = alloc.alloc_block(goal_lba=0)
        before = alloc.free_space()[0]
        alloc.free_block(lba)
        assert alloc.free_space()[0] == before + 4

    def test_spills_to_other_groups(self, alloc):
        # Exhaust group 0's data area.
        layout = alloc.layout
        span = layout.group_end(0) - layout.data_start(0)
        for _ in range(span):
            alloc.alloc_block(goal_lba=layout.data_start(0))
        lba = alloc.alloc_block(goal_lba=layout.data_start(0))
        assert layout.group_of_block(lba) != 0


class TestFrags:
    def test_alloc_frags_subblock(self, alloc):
        frag = alloc.alloc_frags(1, goal_lba=0)
        lba = frag // 4
        group = alloc.layout.group_of_block(lba)
        assert lba >= alloc.layout.data_start(group)

    def test_frags_share_blocks(self, alloc):
        first = alloc.alloc_frags(1, goal_lba=0)
        second = alloc.alloc_frags(1, goal_lba=0)
        assert second // 4 == first // 4  # plugged into the same block

    def test_free_frags(self, alloc):
        frag = alloc.alloc_frags(2, goal_lba=0)
        before = alloc.free_space()[0]
        alloc.free_frags(frag, 2)
        assert alloc.free_space()[0] == before + 2


class TestPersistence:
    def test_store_load_roundtrip(self, alloc):
        inum = alloc.alloc_inode(1, is_dir=False)
        lba = alloc.alloc_block(goal_lba=0)
        for group in range(alloc.layout.sb.num_groups):
            alloc.store_group(group)
        alloc.cache.flush()
        fresh = UFSAllocator(alloc.layout, alloc.cache)
        fresh.load(Breakdown())
        assert fresh.free_space() == alloc.free_space()
        group = alloc.layout.group_of_inum(inum)
        assert fresh.groups[group].inodes.test(
            inum % alloc.layout.sb.inodes_per_group
        )
