"""A write-back buffer cache with synchronous write-through support.

UFS metadata discipline lives above this layer; the cache provides the
mechanics: reads populate entries, asynchronous writes dirty them, and
synchronous writes go straight through to the device (leaving a clean
cached copy).  Eviction of a dirty entry writes it out -- which is how the
large-file benchmark's asynchronous phases end up paying device time even
before an explicit sync.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from repro.blockdev.interface import BlockDevice
from repro.sim.stats import Breakdown


class _Entry:
    __slots__ = ("data", "dirty")

    def __init__(self, data: bytearray, dirty: bool) -> None:
        self.data = data
        self.dirty = dirty


class BufferCache:
    """LRU block cache over a :class:`BlockDevice`."""

    def __init__(self, device: BlockDevice, capacity_bytes: int) -> None:
        if capacity_bytes < device.block_size:
            raise ValueError("cache must hold at least one block")
        self.device = device
        self.block_size = device.block_size
        self.capacity_blocks = capacity_bytes // device.block_size
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def __contains__(self, lba: int) -> bool:
        return lba in self._entries

    def is_dirty(self, lba: int) -> bool:
        entry = self._entries.get(lba)
        return entry.dirty if entry else False

    @property
    def dirty_count(self) -> int:
        return sum(1 for e in self._entries.values() if e.dirty)

    # ------------------------------------------------------------------

    def read(self, lba: int) -> Tuple[bytes, Breakdown]:
        """Read one block through the cache."""
        breakdown = Breakdown()
        entry = self._entries.get(lba)
        if entry is not None:
            self._entries.move_to_end(lba)
            self.hits += 1
            return bytes(entry.data), breakdown
        self.misses += 1
        data, cost = self.device.read_block(lba)
        breakdown.add(cost)
        self._insert(lba, bytearray(data), dirty=False, breakdown=breakdown)
        return data, breakdown

    def populate_run(self, lba: int, count: int) -> Breakdown:
        """Prefetch ``count`` contiguous blocks in one device command."""
        breakdown = Breakdown()
        data, cost = self.device.read_blocks(lba, count)
        breakdown.add(cost)
        for i in range(count):
            if lba + i in self._entries:
                continue  # don't clobber (possibly dirty) cached copies
            chunk = bytearray(
                data[i * self.block_size : (i + 1) * self.block_size]
            )
            self._insert(lba + i, chunk, dirty=False, breakdown=breakdown)
        return breakdown

    def write(self, lba: int, data: bytes, sync: bool) -> Breakdown:
        """Write one full block; synchronous writes reach the device now."""
        if len(data) != self.block_size:
            raise ValueError("write() takes exactly one block")
        breakdown = Breakdown()
        if sync:
            breakdown.add(self.device.write_block(lba, data))
        entry = self._entries.get(lba)
        if entry is not None:
            entry.data[:] = data
            entry.dirty = entry.dirty or not sync
            if sync and entry.dirty:
                entry.dirty = False
            self._entries.move_to_end(lba)
        else:
            self._insert(lba, bytearray(data), dirty=not sync,
                         breakdown=breakdown)
        return breakdown

    def write_partial(
        self,
        lba: int,
        offset: int,
        data: bytes,
        sync: bool,
        fresh: bool = False,
    ) -> Breakdown:
        """Write a byte range within one block.

        Synchronous partial writes use the device's partial-write path
        (sector-granularity on the regular disk, read-modify-write on the
        VLD).  Asynchronous ones merge into the cached copy; ``fresh``
        skips the read-before-merge for newly allocated blocks.
        """
        if offset + len(data) > self.block_size:
            raise ValueError("partial write exceeds the block")
        breakdown = Breakdown()
        entry = self._entries.get(lba)
        if entry is None:
            if fresh:
                base = bytearray(self.block_size)
            else:
                raw, cost = self.device.read_block(lba)
                breakdown.add(cost)
                base = bytearray(raw)
            entry = self._insert(lba, base, dirty=False, breakdown=breakdown)
        entry.data[offset : offset + len(data)] = data
        self._entries.move_to_end(lba)
        if sync:
            breakdown.add(self.device.write_partial(lba, offset, data))
        else:
            entry.dirty = True
        return breakdown

    # ------------------------------------------------------------------

    def flush_block(self, lba: int) -> Breakdown:
        breakdown = Breakdown()
        entry = self._entries.get(lba)
        if entry is not None and entry.dirty:
            breakdown.add(self.device.write_block(lba, bytes(entry.data)))
            entry.dirty = False
        return breakdown

    def flush(self) -> Breakdown:
        """Write back all dirty blocks, coalescing contiguous runs."""
        breakdown = Breakdown()
        dirty = sorted(
            lba for lba, e in self._entries.items() if e.dirty
        )
        i = 0
        while i < len(dirty):
            j = i
            while j + 1 < len(dirty) and dirty[j + 1] == dirty[j] + 1:
                j += 1
            run = dirty[i : j + 1]
            payload = b"".join(
                bytes(self._entries[lba].data) for lba in run
            )
            breakdown.add(
                self.device.write_blocks(run[0], len(run), payload)
            )
            for lba in run:
                self._entries[lba].dirty = False
            i = j + 1
        return breakdown

    def drop_clean(self) -> None:
        """Discard clean entries (the benchmark 'cache flush')."""
        for lba in [l for l, e in self._entries.items() if not e.dirty]:
            del self._entries[lba]

    def invalidate(self, lba: int) -> None:
        """Forget a block entirely (it was freed)."""
        self._entries.pop(lba, None)

    # ------------------------------------------------------------------

    def _insert(
        self, lba: int, data: bytearray, dirty: bool, breakdown: Breakdown
    ) -> _Entry:
        while len(self._entries) >= self.capacity_blocks:
            victim_lba, victim = self._entries.popitem(last=False)
            if victim.dirty:
                breakdown.add(
                    self.device.write_block(victim_lba, bytes(victim.data))
                )
        entry = _Entry(data, dirty)
        self._entries[lba] = entry
        return entry
