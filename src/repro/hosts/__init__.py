"""Host machine models (Section 4 / Figure 9's ``other`` component) and
the multi-host event-engine driver (:mod:`repro.hosts.multihost`)."""

from repro.hosts.specs import (
    HostSpec,
    SPARCSTATION_10,
    ULTRASPARC_170,
    HOSTS,
)

__all__ = [
    "HostSpec",
    "SPARCSTATION_10",
    "ULTRASPARC_170",
    "HOSTS",
    "run_multihost",
    "format_report",
]

_MULTIHOST_EXPORTS = ("run_multihost", "format_report")


def __getattr__(name):
    # Lazy so that importing repro.hosts (which repro.harness.configs does
    # for the specs) never drags in the driver's harness imports -- the
    # packages would otherwise initialize each other mid-import.
    if name in _MULTIHOST_EXPORTS:
        from repro.hosts import multihost

        return getattr(multihost, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
