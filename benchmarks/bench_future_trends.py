"""Extension: the paper's closing prediction, extrapolated one step.

"As the current technology trends continue, we expect that the
performance advantage of this approach will become increasingly
important."  This bench extends Table 2 with a projected ~2004 drive
(platter bandwidth +40 %/yr, 15k RPM, seeks -10 %/yr) and checks that the
update-in-place vs virtual-log gap keeps widening.
"""

from repro.disk.specs import DISKS
from repro.harness.configs import StackConfig, build_stack
from repro.harness.report import format_table
from repro.workloads.random_update import prepare_file, run_random_updates

from .conftest import full_scale, run_once


def test_future_disk_widens_the_gap(benchmark):
    updates, warmup = (300, 100) if full_scale() else (120, 40)

    def sweep():
        rows = {}
        for disk_name in ("hp97560", "st19101", "future2004"):
            spec = DISKS[disk_name]
            capacity = (
                spec.sim_cylinders
                * spec.tracks_per_cylinder
                * spec.sectors_per_track
                * spec.sector_bytes
            )
            file_bytes = int(0.8 * capacity)
            latencies = {}
            for device_type in ("regular", "vld"):
                config = StackConfig(
                    f"ufs-{device_type}", "ufs", device_type, disk_name,
                    "ultra170",
                )
                fs, _disk, device = build_stack(config)
                prepare_file(fs, "/t", file_bytes)
                device.idle(20.0)
                recorder = run_random_updates(
                    fs, "/t", file_bytes, updates, warmup=warmup
                )
                latencies[device_type] = recorder.mean()
            rows[disk_name] = (
                latencies["regular"] * 1e3,
                latencies["vld"] * 1e3,
                latencies["regular"] / latencies["vld"],
            )
        return rows

    results = run_once(benchmark, sweep)

    print()
    print(
        format_table(
            ["disk", "in-place (ms)", "virtual log (ms)", "speedup"],
            [
                [disk, in_place, vlog, f"{speedup:.1f}x"]
                for disk, (in_place, vlog, speedup) in results.items()
            ],
            title="Extension: Table 2 extrapolated to a projected 2004 "
            "drive (UltraSPARC host)",
        )
    )

    speedups = [results[d][2] for d in ("hp97560", "st19101", "future2004")]
    # The gap keeps widening disk generation over disk generation.
    assert speedups[1] > speedups[0]
    assert speedups[2] > speedups[1]
