import pytest

from repro.lfs.inode_map import InodeMap, SegmentUsage


class TestInodeMap:
    def test_starts_empty(self):
        imap = InodeMap(64)
        assert imap.get(1) is None
        assert not imap.allocated(1)

    def test_set_get_roundtrip(self):
        imap = InodeMap(64)
        imap.set(5, address=1234, slot=17)
        assert imap.get(5) == (1234, 17)
        assert imap.allocated(5)

    def test_clear(self):
        imap = InodeMap(64)
        imap.set(5, 10, 0)
        imap.clear(5)
        assert imap.get(5) is None

    def test_alloc_inum_lowest_first(self):
        imap = InodeMap(64)
        assert imap.alloc_inum() == 1
        imap.set(1, 10, 0)
        imap.set(2, 10, 1)
        assert imap.alloc_inum() == 3

    def test_alloc_exhaustion(self):
        imap = InodeMap(4)
        for inum in (1, 2, 3):
            imap.set(inum, 10, inum)
        assert imap.alloc_inum() is None

    def test_live_inums(self):
        imap = InodeMap(16)
        imap.set(3, 5, 0)
        imap.set(9, 5, 1)
        assert list(imap.live_inums()) == [3, 9]

    def test_slot_bounds(self):
        imap = InodeMap(16)
        with pytest.raises(ValueError):
            imap.set(1, 10, 32)
        with pytest.raises(ValueError):
            imap.set(1, 0, 0)

    def test_inum_bounds(self):
        imap = InodeMap(16)
        with pytest.raises(ValueError):
            imap.get(0)
        with pytest.raises(ValueError):
            imap.get(16)

    def test_pack_load_roundtrip(self):
        imap = InodeMap(32)
        imap.set(1, 100, 3)
        imap.set(30, 2000, 29)
        fresh = InodeMap(32)
        fresh.load(imap.pack())
        assert fresh.get(1) == (100, 3)
        assert fresh.get(30) == (2000, 29)
        assert fresh.get(2) is None


class TestSegmentUsage:
    def test_starts_clean(self):
        usage = SegmentUsage(8, 512 << 10)
        assert usage.clean_segments() == list(range(8))
        assert usage.dirty_segments() == []

    def test_note_write_dirties(self):
        usage = SegmentUsage(8, 512 << 10)
        usage.note_write(3, 4096, now=1.0)
        assert not usage.is_clean(3)
        assert usage.live_bytes[3] == 4096
        assert usage.last_write[3] == 1.0

    def test_note_dead_floors_at_zero(self):
        usage = SegmentUsage(8, 512 << 10)
        usage.note_write(3, 4096, now=0.0)
        usage.note_dead(3, 8192)
        assert usage.live_bytes[3] == 0

    def test_reclaimable_requires_zero_live(self):
        usage = SegmentUsage(8, 512 << 10)
        usage.note_write(3, 4096, now=0.0)
        assert usage.reclaimable() == []
        usage.note_dead(3, 4096)
        assert usage.reclaimable() == [3]

    def test_exclude_filters(self):
        usage = SegmentUsage(8, 512 << 10)
        usage.note_write(3, 4096, now=0.0)
        assert 3 not in usage.dirty_segments(exclude=3)

    def test_mark_clean_resets(self):
        usage = SegmentUsage(8, 512 << 10)
        usage.note_write(3, 4096, now=0.0)
        usage.mark_clean(3)
        assert usage.is_clean(3)
        assert usage.live_bytes[3] == 0

    def test_utilization(self):
        usage = SegmentUsage(8, 1000)
        usage.note_write(0, 250, now=0.0)
        assert usage.utilization(0) == pytest.approx(0.25)

    def test_pack_load_roundtrip(self):
        usage = SegmentUsage(4, 512 << 10)
        usage.note_write(1, 9999, now=2.5)
        usage.note_write(3, 1, now=0.5)
        usage.mark_clean(3)
        fresh = SegmentUsage(4, 512 << 10)
        fresh.load(usage.pack())
        assert fresh.live_bytes == usage.live_bytes
        assert fresh.last_write == usage.last_write
        assert fresh.clean_segments() == usage.clean_segments()

    def test_bounds(self):
        usage = SegmentUsage(4, 512 << 10)
        with pytest.raises(ValueError):
            usage.note_write(4, 1, now=0.0)
