"""A simulated clock measured in seconds.

The clock only moves forward.  Disk mechanics, SCSI command processing, and
host CPU overheads all advance it; experiment harnesses read elapsed simulated
time to report latencies and bandwidths exactly the way the paper's modified
Solaris kernel reported wall-clock time.
"""

from __future__ import annotations


class SimClock:
    """Monotonically increasing simulated time, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time.

        Negative advances are rejected: simulated time never flows backwards.
        """
        if seconds < 0.0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, deadline: float) -> float:
        """Advance to an absolute ``deadline`` (no-op if already past it)."""
        if deadline > self._now:
            self._now = deadline
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.9f})"
