"""The multi-host driver: overlap semantics, determinism, striping.

The headline guarantees:

* one host at depth 1 hides *exactly zero* think time (the closed loop
  serializes think and service, so their intervals cannot intersect);
* several hosts over one disk hide real think time (someone is thinking
  while the disk serves someone else);
* a run is a pure function of its arguments -- the full report,
  including the event trace, is identical across repeats and across
  process boundaries (``jobs=1`` vs ``jobs=N`` through the sweep pool).
"""

import pytest

from repro.disk.specs import DISKS
from repro.harness.sweep import SweepPoint, run_sweep
from repro.hosts.multihost import format_report, run_multihost

SPEC = DISKS["st19101"]


def quick(hosts=4, disks=1, **kwargs):
    kwargs.setdefault("requests_per_host", 40)
    kwargs.setdefault("seed", 3)
    return run_multihost(SPEC, hosts=hosts, disks=disks, **kwargs)


class TestOverlapSemantics:
    def test_single_host_hides_exactly_zero_think(self):
        report = quick(hosts=1)
        assert report["hidden_think_seconds"] == 0.0
        assert report["think_seconds"] > 0.0
        assert report["max_outstanding"] == 1

    def test_four_hosts_hide_real_think_time(self):
        report = quick(hosts=4)
        hidden = report["hidden_think_seconds"]
        assert 0.0 < hidden <= report["think_seconds"]

    def test_zero_think_records_no_think_intervals(self):
        report = quick(hosts=2, think_seconds=0.0)
        assert report["think_seconds"] == 0.0
        assert report["hidden_think_seconds"] == 0.0

    def test_per_host_think_times(self):
        report = quick(hosts=2, think_seconds=[0.0, 0.0005])
        # Host 1 thought, host 0 did not.
        assert report["think_seconds"] == pytest.approx(40 * 0.0005)

    def test_accounting_adds_up(self):
        report = quick(hosts=3, disks=2)
        assert report["requests"] == 3 * 40
        busy = report["disk_busy_seconds"]
        assert sorted(busy) == ["disk0", "disk1"]
        assert all(seconds > 0.0 for seconds in busy.values())
        # Each disk's busy intervals are sequential, so no disk can be
        # busy longer than the run; the run cannot beat the busiest disk.
        assert max(busy.values()) <= report["elapsed_seconds"] + 1e-9
        assert report["mean_response_ms"] >= report["mean_service_ms"]

    def test_tail_percentiles_reported(self):
        report = quick(hosts=4)
        assert (
            report["p50_response_ms"]
            <= report["p95_response_ms"]
            <= report["p99_response_ms"]
            <= report["p999_response_ms"]
        )
        assert report["p999_service_ms"] > 0.0

    def test_striping_reaches_every_disk(self):
        report = quick(hosts=2, disks=3, workload="sequential")
        busy = report["disk_busy_seconds"]
        assert sorted(busy) == ["disk0", "disk1", "disk2"]
        assert all(seconds > 0.0 for seconds in busy.values())

    def test_validation(self):
        with pytest.raises(ValueError, match="workload"):
            quick(workload="nope")
        with pytest.raises(ValueError, match="positive"):
            quick(hosts=0)
        with pytest.raises(ValueError, match="2 think times for 3"):
            quick(hosts=3, think_seconds=[0.1, 0.2])
        with pytest.raises(ValueError, match="non-negative"):
            quick(hosts=1, think_seconds=-0.1)


class TestDeterminism:
    @pytest.mark.parametrize("workload", ["random-update", "sequential", "mixed"])
    def test_full_report_identical_across_repeats(self, workload):
        first = quick(hosts=3, disks=2, workload=workload, trace=True)
        second = quick(hosts=3, disks=2, workload=workload, trace=True)
        assert first == second  # includes the full (time, seq, name) trace

    def test_seed_changes_the_run(self):
        assert quick(seed=3) != quick(seed=4)

    def test_jobs1_matches_jobsN_through_the_sweep_pool(self):
        """The cross-process determinism pin: the same multihost points
        executed inline and via the fork pool return equal values."""
        points = [
            SweepPoint(
                "repro.harness.experiments:_point_multihost",
                {
                    "disk_name": "st19101",
                    "hosts": hosts,
                    "disks": 2,
                    "requests_per_host": 25,
                    "workload": "random-update",
                    "policy": "fifo",
                    "think_us": 200.0,
                },
                seed=3,
            )
            for hosts in (1, 2, 4)
        ]
        inline = [r.value for r in run_sweep(points, jobs=1, cache=None)]
        pooled = [r.value for r in run_sweep(points, jobs=4, cache=None)]
        assert inline == pooled


class TestShardedMode:
    def test_sharded_bank_matches_plain_disks_on_shared_keys(self):
        """shards=N is the same simulation as disks=N -- only the
        reporting changes (bank names and the per_shard section)."""
        plain = quick(hosts=4, disks=3)
        sharded = quick(hosts=4, disks=1, shards=3)
        assert sharded["shards"] == 3
        assert "per_shard" in sharded
        skip = {"shards", "per_shard", "disk_busy_seconds"}
        for key, value in plain.items():
            if key in skip:
                continue
            assert sharded[key] == value, key
        # Same busy time per bank member, different names.
        assert sorted(sharded["disk_busy_seconds"]) == [
            "shard0", "shard1", "shard2"
        ]
        assert sorted(sharded["disk_busy_seconds"].values()) == sorted(
            plain["disk_busy_seconds"].values()
        )

    def test_per_shard_only_when_sharded(self):
        assert "per_shard" not in quick(hosts=2, disks=2)
        assert "shards" not in quick(hosts=2, disks=2)

    def test_slow_window_grows_the_limping_shards_tail(self):
        slow = {"shard": 1, "factor": 8.0, "after": 10, "ops": 60}
        report = quick(hosts=4, disks=1, shards=3, shard_slow=slow)
        rows = report["per_shard"]["shards"]
        limping = next(r for r in rows if r["shard"] == "shard1")
        healthy = [r for r in rows if r["shard"] != "shard1"]
        assert limping["ops_slowed"] > 0
        assert limping["slow_extra_seconds"] > 0.0
        assert all(r["ops_slowed"] == 0 for r in healthy)
        assert limping["p99_response_ms"] > max(
            r["p99_response_ms"] for r in healthy
        )

    def test_degraded_window_accounting(self):
        slow = {"shard": 0, "factor": 6.0, "after": 5, "ops": 40}
        report = quick(hosts=4, disks=1, shards=3, shard_slow=slow)
        window = report["per_shard"]["degraded_window"]
        assert window["end"] > window["start"]
        assert window["seconds"] == pytest.approx(
            window["end"] - window["start"]
        )
        rows = report["per_shard"]["shards"]
        assert window["completed"] == sum(
            r["completed_in_window"] for r in rows
        )
        assert window["requests_per_second"] == pytest.approx(
            window["completed"] / window["seconds"]
        )
        for row in rows:
            assert row["busy_in_window_seconds"] <= (
                window["seconds"] + 1e-9
            )

    def test_sharded_run_is_deterministic(self):
        slow = {"shard": 2, "factor": 4.0, "after": 8, "ops": 30}
        first = quick(hosts=3, disks=1, shards=3, shard_slow=slow)
        second = quick(hosts=3, disks=1, shards=3, shard_slow=slow)
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError, match="not both"):
            quick(disks=2, shards=2)
        with pytest.raises(ValueError, match="positive"):
            quick(disks=1, shards=0)
        with pytest.raises(ValueError, match="requires shards"):
            quick(disks=2, shard_slow={"shard": 0, "factor": 2.0})
        with pytest.raises(ValueError, match="out of range"):
            quick(disks=1, shards=2,
                  shard_slow={"shard": 5, "factor": 2.0})

    def test_format_report_renders_shard_lines(self):
        slow = {"shard": 1, "factor": 8.0, "after": 10, "ops": 60}
        report = quick(hosts=2, disks=1, shards=3, shard_slow=slow)
        text = format_report(report)
        assert "shard1" in text
        assert "degraded" in text


class TestFormatReport:
    def test_renders_the_headline_numbers(self):
        report = quick(hosts=2)
        text = format_report(report)
        assert "2 host(s) x 1 disk(s)" in text
        assert "p999=" in text
        assert "hidden_think=" in text
