"""The regular disk: a trivial logical-to-physical identity mapping.

Logical block ``i`` lives at physical sectors ``[i * spb, (i+1) * spb)``.
This is the update-in-place baseline: whatever locality the file system
arranges in logical addresses is exactly the physical locality it gets --
and every in-place update pays the seek plus (on average) half-rotation the
paper's Section 2.1 contrasts eager writing against.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.blockdev.interface import BlockDevice
from repro.disk.disk import Disk
from repro.sim.stats import Breakdown


class RegularDisk(BlockDevice):
    """Identity-mapped block device over a simulated disk."""

    def __init__(self, disk: Disk, block_size: int = 4096) -> None:
        if block_size % disk.sector_bytes != 0:
            raise ValueError("block size must be a multiple of the sector size")
        self.disk = disk
        self.block_size = block_size
        self.sectors_per_block = block_size // disk.sector_bytes
        if disk.geometry.sectors_per_track % self.sectors_per_block != 0:
            raise ValueError(
                "blocks must not straddle track boundaries "
                f"({disk.geometry.sectors_per_track} sectors/track, "
                f"{self.sectors_per_block} sectors/block)"
            )
        self.num_blocks = disk.total_sectors // self.sectors_per_block

    def _sector_of(self, lba: int) -> int:
        return lba * self.sectors_per_block

    def read_block(self, lba: int) -> Tuple[bytes, Breakdown]:
        return self.read_blocks(lba, 1)

    def write_block(self, lba: int, data: Optional[bytes] = None) -> Breakdown:
        return self.write_blocks(lba, 1, data)

    def read_blocks(self, lba: int, count: int) -> Tuple[bytes, Breakdown]:
        self.check_lba(lba, count)
        return self.disk.read(
            self._sector_of(lba), count * self.sectors_per_block
        )

    def write_blocks(
        self, lba: int, count: int, data: Optional[bytes] = None
    ) -> Breakdown:
        self.check_lba(lba, count)
        data = self.check_data(data, count)
        return self.disk.write(
            self._sector_of(lba), count * self.sectors_per_block, data
        )

    def idle(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError("idle time must be non-negative")
        self.disk.clock.advance(seconds)

    def write_partial(self, lba: int, offset: int, data: bytes) -> Breakdown:
        self.check_lba(lba, 1)
        sector_bytes = self.disk.sector_bytes
        if offset % sector_bytes != 0 or len(data) % sector_bytes != 0:
            raise ValueError("partial writes must be sector aligned")
        if offset + len(data) > self.block_size:
            raise ValueError("partial write exceeds the block")
        start = self._sector_of(lba) + offset // sector_bytes
        return self.disk.write(start, len(data) // sector_bytes, data)
