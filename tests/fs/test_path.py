import pytest

from repro.fs.api import FileSystemError
from repro.fs.path import dirname_basename, split_path, validate_name


class TestValidateName:
    def test_valid_names_pass(self):
        for name in ("a", "file.txt", "UPPER", "with space", "x" * 255):
            assert validate_name(name) == name

    def test_empty_rejected(self):
        with pytest.raises(FileSystemError):
            validate_name("")

    def test_dot_names_rejected(self):
        for bad in (".", ".."):
            with pytest.raises(FileSystemError):
                validate_name(bad)

    def test_slash_rejected(self):
        with pytest.raises(FileSystemError):
            validate_name("a/b")

    def test_nul_rejected(self):
        with pytest.raises(FileSystemError):
            validate_name("a\x00b")

    def test_too_long_rejected(self):
        with pytest.raises(FileSystemError):
            validate_name("x" * 256)


class TestSplitPath:
    def test_root(self):
        assert split_path("/") == []

    def test_simple(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]

    def test_repeated_slashes_collapse(self):
        assert split_path("//a///b") == ["a", "b"]

    def test_trailing_slash_ok(self):
        assert split_path("/a/") == ["a"]

    def test_relative_rejected(self):
        with pytest.raises(FileSystemError):
            split_path("a/b")


class TestDirnameBasename:
    def test_split(self):
        assert dirname_basename("/a/b/c") == (["a", "b"], "c")

    def test_top_level(self):
        assert dirname_basename("/file") == ([], "file")

    def test_root_rejected(self):
        with pytest.raises(FileSystemError):
            dirname_basename("/")
