"""Pluggable queue-ordering policies.

Each policy answers one question: of the requests currently pending,
which should the disk service next?  Policies never touch the clock or
the media -- they only *price* candidates, using the same closed-form
mechanics model the disk will charge when the chosen request is serviced.

* ``fifo`` -- submission order; the behaviour of the unscheduled seed
  code, and the ``queue_depth=1`` byte-identity baseline.
* ``scan`` -- the classic elevator: keep sweeping in one direction,
  service the nearest request at or ahead of the head, reverse when the
  direction is exhausted.
* ``satf`` -- shortest access time first: full positioning *plus*
  rotation, the policy a drive that knows its own rotational position can
  run (and the one eager writing's cost model already implements).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.disk.disk import Disk
    from repro.sched.scheduler import DiskRequest


class SchedulingPolicy:
    """Strategy interface: pick the next request to service."""

    name = "abstract"

    def pick(
        self, pending: Sequence["DiskRequest"], disk: "Disk"
    ) -> "DiskRequest":
        raise NotImplementedError


class FIFOPolicy(SchedulingPolicy):
    """Service in arrival order (the seed's implicit policy)."""

    name = "fifo"

    def pick(self, pending, disk):
        return pending[0]


class ElevatorPolicy(SchedulingPolicy):
    """SCAN: sweep the arm one way, reverse only when nothing lies ahead.

    Ties on the same cylinder break by arrival order, so equal-distance
    requests cannot reorder indefinitely.
    """

    name = "scan"

    def __init__(self) -> None:
        self.direction = 1

    def pick(self, pending, disk):
        here = disk.head_cylinder
        decompose = disk.geometry.decompose
        for direction in (self.direction, -self.direction):
            best = None
            for req in pending:
                delta = (decompose(req.sector)[0] - here) * direction
                if delta < 0:
                    continue
                key = (delta, req.seq)
                if best is None or key < best[0]:
                    best = (key, req)
            if best is not None:
                self.direction = direction
                return best[1]
        return pending[0]  # unreachable: some request always qualifies


class SATFPolicy(SchedulingPolicy):
    """Shortest access time first, priced by the mechanics model.

    The predicted cost mirrors ``Disk._position_and_transfer`` exactly:
    command overhead (when the request is host-issued), positioning as
    ``max(seek, head switch)``, then the rotational wait measured from
    the post-positioning instant.  Requests spanning several tracks are
    priced on their first track -- an estimate, but the error is the same
    for every candidate with the same first sector.
    """

    name = "satf"

    def pick(self, pending, disk):
        mechanics = disk.mechanics
        geometry = disk.geometry
        now = disk.clock.now
        scsi = disk.spec.scsi_overhead
        best = None
        for req in pending:
            cylinder, head, sect = geometry.decompose(req.sector)
            lead = (scsi if req.charge_scsi else 0.0) + (
                mechanics.positioning_time(
                    disk.head_cylinder, disk.head_head, cylinder, head
                )
            )
            target = geometry.angle_of(cylinder, head, sect)
            cost = lead + mechanics.wait_for_slot(now + lead, target)
            key = (cost, req.seq)
            if best is None or key < best[0]:
                best = (key, req)
        return best[1]


POLICIES = {
    "fifo": FIFOPolicy,
    "scan": ElevatorPolicy,
    "elevator": ElevatorPolicy,
    "satf": SATFPolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """A fresh policy instance by name (policies may carry sweep state)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; "
            f"known: {', '.join(sorted(set(POLICIES)))}"
        ) from None
