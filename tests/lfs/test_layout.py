import pytest

from repro.lfs.layout import LFSLayout, LFSSuperblock


@pytest.fixture
def layout():
    return LFSLayout.design(total_blocks=5632)


class TestDesign:
    def test_paper_segment_size(self, layout):
        assert layout.segment_bytes == 512 << 10
        assert layout.segment_blocks == 128
        assert layout.data_blocks_per_segment == 127

    def test_segment_count_fits_device(self, layout):
        last = layout.segment_start(layout.sb.num_segments - 1)
        assert last + layout.segment_blocks <= 5632

    def test_checkpoint_slots_before_segments(self, layout):
        assert layout.checkpoint_slot_start(0) >= 1
        assert layout.checkpoint_slot_start(1) > layout.checkpoint_slot_start(0)
        assert layout.sb.seg_start > layout.checkpoint_slot_start(1)

    def test_tiny_device_rejected(self):
        with pytest.raises(ValueError):
            LFSLayout.design(total_blocks=100)

    def test_bad_checkpoint_slot(self, layout):
        with pytest.raises(ValueError):
            layout.checkpoint_slot_start(2)


class TestAddressing:
    def test_segment_of_block_roundtrip(self, layout):
        for segment in (0, 1, layout.sb.num_segments - 1):
            start = layout.segment_start(segment)
            assert layout.segment_of_block(start) == segment
            assert layout.segment_of_block(start + 127) == segment

    def test_non_log_block_rejected(self, layout):
        with pytest.raises(ValueError):
            layout.segment_of_block(0)

    def test_segment_bounds(self, layout):
        with pytest.raises(ValueError):
            layout.segment_start(layout.sb.num_segments)


class TestSuperblock:
    def test_roundtrip(self, layout):
        raw = layout.sb.pack()
        assert len(raw) == 4096
        assert LFSSuperblock.unpack(raw) == layout.sb

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            LFSSuperblock.unpack(bytes(4096))
