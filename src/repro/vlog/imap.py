"""The indirection map: logical block -> physical block (Section 3.1).

Eager writing gives data complete location independence, so the VLD keeps a
table mapping every logical block to wherever its current physical copy
landed.  The whole table lives in drive memory during normal operation
("we can keep the entire virtual log in disk memory", Section 3.2); the
on-disk virtual log of map *chunks* exists purely so the table survives
power loss.

With 4-byte entries per 4 KB physical block the map costs ~24 KB for the
paper's 24 MB disk -- a fraction of a percent of capacity, matching
Section 4.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.vlog.entries import UNMAPPED, entries_per_chunk


class IndirectionMap:
    """In-memory logical-to-physical block map, organised in chunks."""

    def __init__(self, num_logical_blocks: int, block_size: int = 4096) -> None:
        if num_logical_blocks <= 0:
            raise ValueError("map must cover at least one block")
        self.num_logical_blocks = num_logical_blocks
        self.chunk_capacity = entries_per_chunk(block_size)
        self.num_chunks = -(-num_logical_blocks // self.chunk_capacity)
        self._entries: List[int] = [UNMAPPED] * num_logical_blocks

    def _check(self, lba: int) -> None:
        if not 0 <= lba < self.num_logical_blocks:
            raise ValueError(f"logical block {lba} out of range")

    def get(self, lba: int) -> Optional[int]:
        """Physical block for a logical block, or ``None`` when unmapped."""
        self._check(lba)
        value = self._entries[lba]
        return None if value == UNMAPPED else value

    def set(self, lba: int, physical_block: int) -> Optional[int]:
        """Map ``lba`` to a physical block; returns the displaced mapping.

        The displaced physical block (if any) is exactly the "freed by
        overwrite" detection of Section 4.2: re-use of a logical address
        tells the VLD the old physical copy is dead.
        """
        self._check(lba)
        if not 0 <= physical_block < UNMAPPED:
            raise ValueError(f"physical block {physical_block} unencodable")
        old = self._entries[lba]
        self._entries[lba] = physical_block
        return None if old == UNMAPPED else old

    def clear(self, lba: int) -> Optional[int]:
        """Unmap a logical block (an explicit trim); returns old mapping."""
        self._check(lba)
        old = self._entries[lba]
        self._entries[lba] = UNMAPPED
        return None if old == UNMAPPED else old

    def chunk_id_of(self, lba: int) -> int:
        self._check(lba)
        return lba // self.chunk_capacity

    def chunk_entries(self, chunk_id: int) -> List[int]:
        """The raw entry values of one chunk (for a log record payload)."""
        if not 0 <= chunk_id < self.num_chunks:
            raise ValueError(f"chunk {chunk_id} out of range")
        lo = chunk_id * self.chunk_capacity
        hi = min(lo + self.chunk_capacity, self.num_logical_blocks)
        return self._entries[lo:hi]

    def load_chunk(self, chunk_id: int, entries: List[int]) -> None:
        """Install recovered chunk contents."""
        lo = chunk_id * self.chunk_capacity
        hi = min(lo + self.chunk_capacity, self.num_logical_blocks)
        if len(entries) != hi - lo:
            raise ValueError(
                f"chunk {chunk_id} expects {hi - lo} entries, "
                f"got {len(entries)}"
            )
        self._entries[lo:hi] = entries

    def load_chunks(self, chunks: Dict[int, List[int]]) -> None:
        """Install a recovered map, resetting unmentioned chunks."""
        self._entries = [UNMAPPED] * self.num_logical_blocks
        for chunk_id, entries in chunks.items():
            self.load_chunk(chunk_id, entries)

    def mapped_count(self) -> int:
        """Number of logical blocks currently mapped."""
        return sum(1 for e in self._entries if e != UNMAPPED)

    def items(self):
        """Yield (lba, physical_block) for every mapped block."""
        for lba, value in enumerate(self._entries):
            if value != UNMAPPED:
                yield lba, value
