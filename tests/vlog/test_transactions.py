"""Atomic multi-block transactions on the virtual log.

The all-or-nothing guarantee is exercised with crash injection at every
phase of the commit protocol, plus a randomized multi-transaction history
check.
"""

import random

import pytest

from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.vlog.transactions import CrashInjected, TransactionalVLD


@pytest.fixture
def tvld():
    return TransactionalVLD(Disk(ST19101))


def block(tag: int) -> bytes:
    return bytes([tag % 251]) * 4096


class TestCommit:
    def test_atomic_write_applies_all(self, tvld):
        tvld.write_atomic([(1, block(10)), (2000, block(20)), (5, block(30))])
        assert tvld.read_block(1)[0] == block(10)
        assert tvld.read_block(2000)[0] == block(20)
        assert tvld.read_block(5)[0] == block(30)
        tvld.vlog.check_invariants()

    def test_transaction_object_api(self, tvld):
        txn = tvld.begin()
        txn.write(7, block(1))
        txn.write(8, block(2))
        cost = txn.commit()
        assert cost.total > 0
        assert txn.committed
        assert tvld.read_block(7)[0] == block(1)
        with pytest.raises(RuntimeError):
            txn.write(9, block(3))

    def test_context_manager_commits(self, tvld):
        with tvld.begin() as txn:
            txn.write(3, block(3))
        assert tvld.read_block(3)[0] == block(3)

    def test_context_manager_aborts_on_exception(self, tvld):
        tvld.write_block(3, block(1))
        with pytest.raises(ValueError):
            with tvld.begin() as txn:
                txn.write(3, block(99))
                raise ValueError("application error")
        assert tvld.read_block(3)[0] == block(1)

    def test_abort_discards(self, tvld):
        tvld.write_block(3, block(1))
        txn = tvld.begin()
        txn.write(3, block(2))
        txn.abort()
        assert tvld.read_block(3)[0] == block(1)

    def test_last_write_wins_within_txn(self, tvld):
        tvld.write_atomic([(4, block(1)), (4, block(2))])
        assert tvld.read_block(4)[0] == block(2)

    def test_empty_transaction(self, tvld):
        cost = tvld.write_atomic([])
        assert cost.total >= 0

    def test_transaction_spanning_map_chunks(self, tvld):
        # chunk capacity is 112 entries for 512 B records: these lbas live
        # in different chunks, forcing multiple member records.
        lbas = [0, 200, 500, 1000, 3000]
        tvld.write_atomic([(lba, block(lba)) for lba in lbas])
        for lba in lbas:
            assert tvld.read_block(lba)[0] == block(lba)

    def test_space_reclaimed_after_overwrite_txn(self, tvld):
        tvld.write_atomic([(1, block(1)), (2, block(2))])
        free_before = tvld.freemap.free_sectors
        for round_tag in range(10):
            tvld.write_atomic([(1, block(round_tag)), (2, block(round_tag))])
        # Old data blocks and superseded map records recycle; commit slots
        # are reused.  Allow small drift for commit-slot growth.
        assert tvld.freemap.free_sectors >= free_before - 16


class TestCrashInjection:
    def _seed(self, tvld):
        tvld.write_block(10, block(100))
        tvld.write_block(11, block(101))
        tvld.power_down()

    @pytest.mark.parametrize("point", ["after_data", "after_members"])
    def test_crash_before_commit_record_rolls_back(self, tvld, point):
        self._seed(tvld)
        txn = tvld.begin()
        txn.write(10, block(200))
        txn.write(11, block(201))
        with pytest.raises(CrashInjected):
            txn.commit(crash_point=point)
        tvld.crash()
        tvld.recover(timed=False)
        # All-or-nothing: neither new value may be visible.
        assert tvld.read_block(10)[0] == block(100)
        assert tvld.read_block(11)[0] == block(101)
        tvld.vlog.check_invariants()

    def test_crash_after_commit_keeps_everything(self, tvld):
        self._seed(tvld)
        tvld.write_atomic([(10, block(200)), (11, block(201))])
        tvld.crash()  # power-down record is stale; scan path
        tvld.recover(timed=False)
        assert tvld.read_block(10)[0] == block(200)
        assert tvld.read_block(11)[0] == block(201)

    def test_first_write_of_block_rolls_back_to_unmapped(self, tvld):
        txn = tvld.begin()
        txn.write(42, block(9))
        with pytest.raises(CrashInjected):
            txn.commit(crash_point="after_members")
        tvld.crash()
        tvld.recover(timed=False)
        assert tvld.read_block(42)[0] == bytes(4096)

    def test_space_not_leaked_by_aborted_txn(self, tvld):
        self._seed(tvld)
        txn = tvld.begin()
        txn.write(10, block(200))
        with pytest.raises(CrashInjected):
            txn.commit(crash_point="after_members")
        tvld.crash()
        tvld.recover(timed=False)
        # The orphaned new data block and member record were reclaimed.
        for lba, physical in tvld.imap.items():
            assert not tvld.freemap.run_is_free(physical * 8, 8)
        used = (
            tvld.disk.total_sectors - tvld.freemap.free_sectors
        ) // 8
        # power-down home + 2 data blocks + map records only.
        assert used < 16

    def test_service_continues_after_rollback(self, tvld):
        self._seed(tvld)
        txn = tvld.begin()
        txn.write(10, block(200))
        with pytest.raises(CrashInjected):
            txn.commit(crash_point="after_data")
        tvld.crash()
        tvld.recover(timed=False)
        tvld.write_atomic([(10, block(250)), (12, block(251))])
        assert tvld.read_block(10)[0] == block(250)
        tvld.vlog.check_invariants()


class TestRandomizedHistories:
    def test_interleaved_txns_and_writes_with_crashes(self, tvld):
        """A randomized history of plain writes, transactions, commits,
        injected crashes, and recoveries must always match a model that
        applies only the committed operations."""
        rng = random.Random(0xAC1D)
        model = {}
        tag = 0
        for _step in range(60):
            action = rng.random()
            tag += 1
            if action < 0.4:
                lba = rng.randrange(200)
                tvld.write_block(lba, block(tag))
                model[lba] = block(tag)
            elif action < 0.8:
                lbas = rng.sample(range(200), rng.randrange(1, 6))
                tvld.write_atomic([(lba, block(tag)) for lba in lbas])
                for lba in lbas:
                    model[lba] = block(tag)
            else:
                lbas = rng.sample(range(200), rng.randrange(1, 6))
                txn = tvld.begin()
                for lba in lbas:
                    txn.write(lba, block(tag))
                point = rng.choice(["after_data", "after_members"])
                with pytest.raises(CrashInjected):
                    txn.commit(crash_point=point)
                tvld.crash()
                tvld.recover(timed=False)
                # model unchanged: the transaction never happened
        for lba in range(200):
            data, _ = tvld.read_block(lba)
            assert data == model.get(lba, bytes(4096)), f"lba {lba}"
        tvld.vlog.check_invariants()

    def test_commit_slot_reuse_bounds_log_growth(self, tvld):
        """Commit records must recycle: many sequential transactions over
        the same blocks cannot grow the set of live commit slots."""
        for round_tag in range(40):
            tvld.write_atomic(
                [(1, block(round_tag)), (2, block(round_tag + 1))]
            )
        live_commits = [
            c for c in tvld.vlog._chunk_location if c >= 0x4000_0000
        ]
        assert len(live_commits) <= 4
