"""Stack configurations: the four file system / disk combinations of
Figure 5, on either drive and either host."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.blockdev.interface import BlockDevice
from repro.blockdev.regular import RegularDisk
from repro.disk.cache import ReadAheadPolicy
from repro.disk.disk import Disk
from repro.disk.specs import DISKS, DiskSpec
from repro.fs.api import FileSystem
from repro.hosts.specs import HOSTS, HostSpec
from repro.lfs.lfs import LFS
from repro.ufs.ufs import UFS
from repro.vlog.vld import VirtualLogDisk


@dataclass(frozen=True)
class StackConfig:
    """One experimental configuration."""

    name: str
    fs_type: str = "ufs"  # "ufs" | "lfs"
    device_type: str = "regular"  # "regular" | "vld"
    disk_name: str = "st19101"
    host_name: str = "sparc10"
    nvram: bool = False
    num_cylinders: int = 0  # 0 = the spec's simulated default

    def with_platform(self, disk_name: str, host_name: str) -> "StackConfig":
        return replace(self, disk_name=disk_name, host_name=host_name)


#: The paper's four standard stacks (Figure 5), on the default platform
#: (Seagate disk, SPARCstation-10 host -- Section 5's stated default).
STACKS = {
    "ufs-regular": StackConfig("ufs-regular", "ufs", "regular"),
    "ufs-vld": StackConfig("ufs-vld", "ufs", "vld"),
    "lfs-regular": StackConfig("lfs-regular", "lfs", "regular"),
    "lfs-vld": StackConfig("lfs-vld", "lfs", "vld"),
}


def build_stack(
    config: StackConfig,
) -> Tuple[FileSystem, Disk, BlockDevice]:
    """Instantiate (file system, disk, device) for a configuration."""
    spec: DiskSpec = DISKS[config.disk_name]
    host: HostSpec = HOSTS[config.host_name]
    if config.device_type == "vld":
        # The paper's VLD read-ahead fix: prefetch whole tracks and retain.
        disk = Disk(
            spec,
            num_cylinders=config.num_cylinders,
            readahead=ReadAheadPolicy.FULL_TRACK,
        )
        device: BlockDevice = VirtualLogDisk(disk)
    elif config.device_type == "regular":
        disk = Disk(spec, num_cylinders=config.num_cylinders)
        device = RegularDisk(disk)
    else:
        raise ValueError(f"unknown device type {config.device_type!r}")
    if config.fs_type == "ufs":
        fs: FileSystem = UFS(device, host)
    elif config.fs_type == "lfs":
        fs = LFS(device, host, nvram=config.nvram)
    else:
        raise ValueError(f"unknown fs type {config.fs_type!r}")
    return fs, disk, device


def utilization_of(fs: FileSystem, device: BlockDevice) -> float:
    """Space utilization as the paper's ``df`` reading would report it."""
    if isinstance(fs, UFS):
        free_frags, _ = fs.alloc.free_space()
        total = (
            fs.layout.sb.num_groups
            * fs.layout.sb.blocks_per_group
            * fs.layout.frags_per_block
        )
        return (total - free_frags) / total
    if isinstance(fs, LFS):
        # Count NVRAM-resident dirty data as used space too -- it is live
        # file content that simply has not reached the log yet.
        live = sum(fs.segusage.live_bytes)
        buffered = fs.cache.dirty_blocks * fs.block_size
        total = fs.layout.sb.num_segments * fs.layout.segment_bytes
        return min(1.0, (live + buffered) / total)
    raise TypeError(f"unknown file system {type(fs)!r}")
