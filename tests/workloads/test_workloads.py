"""Workload generators: content integrity plus paper-shaped behaviour."""

import pytest

from repro.workloads.bursts import run_bursts
from repro.workloads.largefile import run_large_file
from repro.workloads.random_update import prepare_file, run_random_updates
from repro.workloads.smallfile import run_small_file

_MB = 1 << 20


class TestSmallFile:
    def test_phases_reported_and_verified(self, ufs):
        result = run_small_file(ufs, num_files=40, verify=True)
        assert result.num_files == 40
        assert result.create_seconds > 0
        assert result.read_seconds > 0
        assert result.delete_seconds > 0
        assert result.phase("create") == result.create_seconds

    def test_files_are_gone_after_delete(self, ufs):
        run_small_file(ufs, num_files=10)
        assert ufs.listdir("/") == []

    def test_lfs_create_much_faster_than_ufs(self, ufs, lfs):
        """Figure 6's left bars: LFS buffers, UFS writes synchronously."""
        ufs_result = run_small_file(ufs, num_files=40)
        lfs_result = run_small_file(lfs, num_files=40)
        assert lfs_result.create_seconds < ufs_result.create_seconds


class TestLargeFile:
    def test_all_phases_present(self, ufs):
        result = run_large_file(ufs, file_bytes=2 * _MB, verify=True)
        for phase in (
            "seq_write",
            "seq_read",
            "rand_write_async",
            "rand_write_sync",
            "seq_read_again",
            "rand_read",
        ):
            assert result.bandwidths[phase] > 0

    def test_sync_phase_optional(self, lfs):
        result = run_large_file(
            lfs, file_bytes=2 * _MB, include_sync_phase=False
        )
        assert "rand_write_sync" not in result.bandwidths

    def test_sync_random_write_slowest_on_ufs_regular(self, ufs):
        result = run_large_file(ufs, file_bytes=2 * _MB)
        bandwidths = result.bandwidths
        assert bandwidths["rand_write_sync"] < bandwidths["seq_write"]
        assert bandwidths["rand_write_sync"] < bandwidths["rand_write_async"]

    def test_random_writes_destroy_vld_read_locality(self, ufs_vld):
        """Figure 7: sequential read *after* random writes collapses on
        eager-writing layouts."""
        result = run_large_file(ufs_vld, file_bytes=2 * _MB)
        assert (
            result.bandwidths["seq_read_again"]
            < result.bandwidths["seq_read"]
        )


class TestRandomUpdates:
    def test_prepare_then_update(self, ufs):
        prepare_file(ufs, "/t", 2 * _MB)
        assert ufs.stat("/t").size == 2 * _MB
        recorder = run_random_updates(ufs, "/t", 2 * _MB, updates=30)
        assert recorder.count == 30
        assert recorder.mean() > 0

    def test_warmup_excluded_from_stats(self, ufs):
        prepare_file(ufs, "/t", _MB)
        recorder = run_random_updates(
            ufs, "/t", _MB, updates=10, warmup=5
        )
        assert recorder.count == 10

    def test_deterministic_given_seed(self, ufs, host):
        from repro.blockdev.regular import RegularDisk
        from repro.disk.disk import Disk
        from repro.disk.specs import ST19101
        from repro.ufs.ufs import UFS

        means = []
        for _ in range(2):
            fs = UFS(RegularDisk(Disk(ST19101)), host)
            prepare_file(fs, "/t", _MB)
            recorder = run_random_updates(fs, "/t", _MB, updates=25, seed=7)
            means.append(recorder.mean())
        assert means[0] == pytest.approx(means[1])


class TestBursts:
    def test_idle_time_passes_between_bursts(self, ufs_vld):
        prepare_file(ufs_vld, "/t", 2 * _MB)
        clock = ufs_vld.clock
        start = clock.now
        run_bursts(
            ufs_vld,
            "/t",
            2 * _MB,
            burst_bytes=64 << 10,
            idle_seconds=0.2,
            bursts=3,
            warmup_bursts=0,
        )
        assert clock.now - start >= 3 * 0.2

    def test_recorder_counts_only_measured_bursts(self, ufs):
        prepare_file(ufs, "/t", _MB)
        recorder = run_bursts(
            ufs,
            "/t",
            _MB,
            burst_bytes=32 << 10,
            idle_seconds=0.0,
            bursts=2,
            warmup_bursts=1,
        )
        assert recorder.count == 2 * (32 << 10) // 4096
