"""Disk mechanics: where the head is and how long movements take.

The rotational position of the platter is a pure function of simulated time
(the spindle never stops or slips in this model), so the service-time engine
can compute rotational waits closed-form instead of stepping an event queue.
"""

from __future__ import annotations

import math

from repro.disk.specs import DiskSpec


class DiskMechanics:
    """Timing primitives derived from a :class:`DiskSpec`."""

    def __init__(self, spec: DiskSpec) -> None:
        self.spec = spec
        self.rotation_time = spec.rotation_time
        self.sector_time = spec.sector_time
        self.sectors_per_track = spec.sectors_per_track
        #: Clock magnitude beyond which the interior-boundary snap's
        #: tolerance (``now * 2e-14`` seconds) could reach 0.125 slots,
        #: i.e. where the cheap ``slot % 1.0`` proximity pre-gate would
        #: no longer be a safe superset of the snap condition.  The exact
        #: crossover is ``0.124 * sector_time / 2e-14`` (~6e12 sector
        #: times); 1e12 leaves a 6x margin.
        self._snap_coarse = spec.sector_time * 1e12

    def rotational_slot(self, now: float) -> float:
        """Continuous angular position (in sector slots) at time ``now``.

        The integer part is the slot currently under the head; the fraction
        is progress through that slot.

        Float-boundary normalization: when ``now`` is mathematically a
        multiple of the rotation time, the float that reaches us is often
        a hair *above* it (``k * rotation_time`` rounds up by as much as
        half an ulp, and a sum of service times can land a further ulp
        past the boundary).  The remainder is then pure rounding noise --
        comparable to the spacing of floats at magnitude ``now`` -- but
        without normalization it reads as "a hair past slot 0", and
        :meth:`wait_for_slot` would charge a spurious (near-)full
        revolution for attoseconds of simulated time.  Remainders at or
        below ``2 * ulp(now)`` (covering the worst case of one rounding
        plus one neighbouring float, ~1e-15 of a sector time) therefore
        snap to the boundary (slot 0.0).  The ``frac >= 1.0`` guard
        restores the documented ``[0, n)`` range in the opposite corner,
        where ``rem / rotation_time`` rounds up to exactly 1.0.

        The same argument applies at every *interior* sector boundary: a
        chain of service times that mathematically ends exactly where a
        sector starts (the normal case for back-to-back transfers)
        accumulates one rounding per arithmetic step, so the float sum
        lands within a few ulp of the boundary on either side.  Read a
        hair *past* it, the next access to that sector would charge a
        full spurious revolution -- which is how the eager allocator used
        to skip the physically adjacent block after almost every write.
        Slots within ``now * 2e-14`` seconds of a sector boundary (about
        90 ulp of the clock, still nine orders of magnitude below a
        sector time at simulation scales) therefore snap to it.

        The exact snap test (a ``round`` call plus an ulp-scale compare)
        is gated behind a cheap proximity check: the snap can only fire
        when ``slot`` is within ``now * 2e-14 / sector_time`` slots of an
        integer, which for clocks below ``_snap_coarse`` is far inside
        0.125 slots -- so ``slot % 1.0`` outside ``(0.125, 0.875)`` (or
        an over-coarse clock) is the only case that needs the full test.
        The gate is a strict superset of the snap condition, so results
        are bit-identical with or without it.
        """
        if now < 0.0:
            raise ValueError("time must be non-negative")
        rotation = self.rotation_time
        rem = now % rotation
        if rem <= 0.0 or rem <= 2.0 * math.ulp(now):
            return 0.0
        frac = rem / rotation
        if frac >= 1.0:
            return 0.0
        slot = frac * self.sectors_per_track
        m = slot % 1.0
        if m < 0.125 or m > 0.875 or now > self._snap_coarse:
            nearest = round(slot)
            if nearest != slot and abs(rem - nearest * self.sector_time) <= now * 2e-14:
                if nearest == self.sectors_per_track:
                    return 0.0
                return float(nearest)
        return slot

    def wait_for_slot(self, now: float, target_slot: int) -> float:
        """Seconds until the *start* of ``target_slot`` next passes the head.

        Returns 0.0 only when the head is exactly at the slot boundary;
        otherwise waits for the next pass (up to one full revolution minus
        epsilon).
        """
        if not 0 <= target_slot < self.sectors_per_track:
            raise ValueError(f"slot {target_slot} out of range")
        position = self.rotational_slot(now)
        delta = (target_slot - position) % self.sectors_per_track
        return delta * self.sector_time

    def transfer_time(self, sectors: int) -> float:
        """Media transfer time for ``sectors`` contiguous sectors."""
        if sectors < 0:
            raise ValueError("sector count must be non-negative")
        return sectors * self.sector_time

    def seek_time(self, from_cylinder: int, to_cylinder: int) -> float:
        """Seek between two cylinders (0.0 when they are equal)."""
        return self.spec.seek_time(abs(to_cylinder - from_cylinder))

    def head_switch_time(self, from_head: int, to_head: int) -> float:
        """Electronic head-switch cost (0.0 when the head is unchanged)."""
        if from_head == to_head:
            return 0.0
        return self.spec.head_switch_time

    def positioning_time(
        self,
        from_cylinder: int,
        from_head: int,
        to_cylinder: int,
        to_head: int,
    ) -> float:
        """Combined arm positioning cost.

        Seeking and head switching proceed concurrently in modern drives,
        so the cost is the maximum of the two, not the sum.
        """
        seek = self.seek_time(from_cylinder, to_cylinder)
        switch = self.head_switch_time(from_head, to_head)
        return max(seek, switch)
