"""The file system interface the benchmarks drive.

Every operation returns a :class:`~repro.sim.stats.Breakdown` describing the
simulated latency it cost (host CPU in ``other``, device components as the
disk reports them), so workloads can record per-operation latencies exactly
the way the paper's instrumented kernel did.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.sim.stats import Breakdown


class FileSystemError(Exception):
    """Base class for file system errors."""


class FileNotFound(FileSystemError):
    pass


class FileExists(FileSystemError):
    pass


class NotADirectory(FileSystemError):
    pass


class IsADirectory(FileSystemError):
    pass


class DirectoryNotEmpty(FileSystemError):
    pass


class NoSpace(FileSystemError):
    pass


@dataclass
class FileStat:
    """Subset of ``stat(2)`` the benchmarks need."""

    inum: int
    size: int
    is_dir: bool
    nlink: int
    blocks: int  # number of file system blocks allocated


class FileSystem(abc.ABC):
    """Abstract hierarchical file system over a block device."""

    block_size: int

    # -- namespace ------------------------------------------------------

    @abc.abstractmethod
    def create(self, path: str) -> Breakdown:
        """Create an empty regular file."""

    @abc.abstractmethod
    def mkdir(self, path: str) -> Breakdown:
        """Create a directory."""

    @abc.abstractmethod
    def unlink(self, path: str) -> Breakdown:
        """Remove a regular file."""

    @abc.abstractmethod
    def rmdir(self, path: str) -> Breakdown:
        """Remove an empty directory."""

    @abc.abstractmethod
    def rename(self, old_path: str, new_path: str) -> Breakdown:
        """Move a file or directory to a new name (target must not exist)."""

    @abc.abstractmethod
    def truncate(self, path: str, size: int) -> Breakdown:
        """Set a regular file's size, freeing or sparsely extending it."""

    @abc.abstractmethod
    def stat(self, path: str) -> FileStat:
        """Look up a file's metadata (free of charge: benchmarks only)."""

    @abc.abstractmethod
    def listdir(self, path: str):
        """Names in a directory (free of charge: benchmarks only)."""

    @abc.abstractmethod
    def exists(self, path: str) -> bool:
        """Whether a path resolves (free of charge)."""

    # -- data -----------------------------------------------------------

    @abc.abstractmethod
    def write(
        self, path: str, offset: int, data: bytes, sync: bool = False
    ) -> Breakdown:
        """Write bytes at an offset, growing the file as needed.

        ``sync=True`` models ``O_SYNC``: the call completes only after data
        and the associated metadata reach stable storage.
        """

    @abc.abstractmethod
    def read(self, path: str, offset: int, length: int):
        """Read up to ``length`` bytes; returns ``(data, Breakdown)``."""

    @abc.abstractmethod
    def fsync(self, path: str) -> Breakdown:
        """Force a file's dirty state to stable storage."""

    @abc.abstractmethod
    def sync(self) -> Breakdown:
        """Flush all dirty state."""

    # -- cache control (benchmark hooks) ---------------------------------

    @abc.abstractmethod
    def drop_caches(self) -> None:
        """Discard clean cached data (the paper's "after a cache flush")."""

    def idle(self, seconds: float) -> Breakdown:
        """Let ``seconds`` of idle time pass.

        File systems with background machinery (LFS cleaner, VLD compactor)
        override this to spend the idle time productively; the default just
        advances the clock.
        """
        raise NotImplementedError
