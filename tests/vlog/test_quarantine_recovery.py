"""Recovery when the *quarantine table's own record* dies on disk.

The quarantine table persists through the virtual log like any other
chunk.  If the sector holding that record becomes unreadable before a
crash, the scan cannot recover the table -- the failure mode must be a
conservatively *rebuilt* quarantine (the dead record's sectors retired,
nothing handed back to the allocator), never a silently emptied one.
"""

import pytest

from repro.blockdev.interpose import DiskFaultInjector
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.vlog.entries import QUARANTINE_CHUNK_BASE
from repro.vlog.resilience import vlfsck
from repro.vlog.vld import VirtualLogDisk


@pytest.fixture
def disk():
    return Disk(ST19101, num_cylinders=2)


@pytest.fixture
def vld(disk):
    return VirtualLogDisk(disk)


def _payload(tag: int, size: int = 4096) -> bytes:
    return bytes([tag % 251]) * size


def _fill(vld, n=10):
    for lba in range(n):
        vld.write_block(lba, _payload(lba))


def _quarantine_record_sector(vld):
    """The physical sector holding the current quarantine-table record."""
    block = vld.vlog.location_of(QUARANTINE_CHUNK_BASE)
    assert block is not None, "quarantine table was never persisted"
    return block * vld.vlog.sectors_per_block


class TestDeadQuarantineRecord:
    def test_record_sector_is_conservatively_requarantined(self, vld, disk):
        _fill(vld)
        victim = disk.total_sectors - 5  # a free sector far from the data
        assert vld.resilience.quarantine_sector(victim)
        vld.resilience.persist_quarantine()
        record_sector = _quarantine_record_sector(vld)

        # The record's home sector dies; every read of it now fails.
        DiskFaultInjector(bad_sectors={record_sector}, seed=3).install(disk)
        vld.crash()
        outcome = vld.recover()

        # Recovery completed, and the unreadable record's sector -- free
        # in the rebuilt map, so nothing would ever re-discover the
        # defect -- was retired before the allocator could reuse it.
        assert outcome.scanned
        assert outcome.conservatively_quarantined >= 1
        assert record_sector in vld.resilience.quarantine
        assert vld.freemap.is_quarantined(record_sector)

    def test_quarantine_is_never_silently_emptied(self, vld, disk):
        _fill(vld)
        victim = disk.total_sectors - 5
        vld.resilience.quarantine_sector(victim)
        vld.resilience.persist_quarantine()
        record_sector = _quarantine_record_sector(vld)
        DiskFaultInjector(bad_sectors={record_sector}, seed=3).install(disk)
        vld.crash()
        outcome = vld.recover()

        # The table's *contents* died with the record, but the rebuilt
        # quarantine is non-empty and re-persisted: a later crash finds a
        # valid record again.
        assert len(vld.resilience.quarantine) >= 1
        assert outcome.quarantined_sectors >= 1
        assert vld.vlog.location_of(QUARANTINE_CHUNK_BASE) is not None
        fresh = vld.vlog.location_of(QUARANTINE_CHUNK_BASE)
        assert fresh * vld.vlog.sectors_per_block != record_sector

    def test_data_survives_and_fsck_is_clean(self, vld, disk):
        _fill(vld)
        vld.resilience.quarantine_sector(disk.total_sectors - 5)
        vld.resilience.persist_quarantine()
        record_sector = _quarantine_record_sector(vld)
        DiskFaultInjector(bad_sectors={record_sector}, seed=3).install(disk)
        vld.crash()
        vld.recover()
        for lba in range(10):
            data, _ = vld.read_block(lba)
            assert data == _payload(lba)
        report = vlfsck(vld, deep=True)
        assert report.ok, report.summary()

    def test_dead_live_sector_becomes_suspect_not_quarantined(
        self, vld, disk
    ):
        """The conservative rule only retires *free* dead sectors; a dead
        sector still holding live data stays reachable and is queued for
        the scrubber's salvage path instead."""
        _fill(vld)
        live_sector = vld.imap.get(3) * vld.sectors_per_block
        DiskFaultInjector(bad_sectors={live_sector}, seed=3).install(disk)
        vld.crash()
        outcome = vld.recover()
        assert live_sector not in vld.resilience.quarantine
        assert live_sector in vld.resilience.suspects
        assert not vld.freemap.is_quarantined(live_sector)
        assert outcome.scanned
