import pytest

from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.lfs.checkpoint import CheckpointStore
from repro.lfs.inode_map import InodeMap, SegmentUsage
from repro.lfs.layout import LFSLayout


@pytest.fixture
def setup():
    device = RegularDisk(Disk(ST19101))
    layout = LFSLayout.design(device.num_blocks)
    store = CheckpointStore(device, layout)
    imap = InodeMap(layout.sb.max_inodes)
    usage = SegmentUsage(layout.sb.num_segments, layout.segment_bytes)
    return device, layout, store, imap, usage


class TestCheckpointStore:
    def test_write_read_roundtrip(self, setup):
        _dev, layout, store, imap, usage = setup
        imap.set(5, 1000, 3)
        usage.note_write(2, 8192, now=1.5)
        store.write(imap, usage, flush_seqno=7, now=2.0)
        fresh_imap = InodeMap(layout.sb.max_inodes)
        fresh_usage = SegmentUsage(
            layout.sb.num_segments, layout.segment_bytes
        )
        header, _cost = store.read_latest(fresh_imap, fresh_usage)
        assert header is not None
        assert header.flush_seqno == 7
        assert fresh_imap.get(5) == (1000, 3)
        assert fresh_usage.live_bytes[2] == 8192

    def test_blank_device_reads_none(self, setup):
        _dev, layout, store, imap, usage = setup
        header, _ = store.read_latest(imap, usage)
        assert header is None

    def test_slots_alternate_and_newest_wins(self, setup):
        _dev, layout, store, imap, usage = setup
        imap.set(1, 100, 0)
        store.write(imap, usage, flush_seqno=1, now=1.0)
        imap.set(1, 200, 1)
        store.write(imap, usage, flush_seqno=2, now=2.0)
        imap.set(1, 300, 2)
        store.write(imap, usage, flush_seqno=3, now=3.0)  # overwrites slot 0
        fresh = InodeMap(layout.sb.max_inodes)
        header, _ = store.read_latest(
            fresh, SegmentUsage(layout.sb.num_segments, layout.segment_bytes)
        )
        assert header.flush_seqno == 3
        assert fresh.get(1) == (300, 2)

    def test_corrupt_newest_falls_back_to_older(self, setup):
        device, layout, store, imap, usage = setup
        imap.set(1, 100, 0)
        store.write(imap, usage, flush_seqno=1, now=1.0)
        imap.set(1, 200, 1)
        store.write(imap, usage, flush_seqno=2, now=2.0)
        # Corrupt slot 1 (the newer one).
        start = layout.checkpoint_slot_start(1)
        device.write_block(start + 1, b"\xba\xad" * 2048)
        fresh = InodeMap(layout.sb.max_inodes)
        header, _ = store.read_latest(
            fresh, SegmentUsage(layout.sb.num_segments, layout.segment_bytes)
        )
        assert header.flush_seqno == 1
        assert fresh.get(1) == (100, 0)

    def test_checkpoint_costs_device_time(self, setup):
        device, _layout, store, imap, usage = setup
        cost = store.write(imap, usage, flush_seqno=1, now=0.0)
        assert cost.total > 0.0
