"""The LFS cleaner.

Reclaims segments by copying their live blocks to the head of the log.
Two victim-selection policies:

* ``GREEDY`` -- lowest utilization first;
* ``COST_BENEFIT`` -- Rosenblum & Ousterhout's ``(1 - u) * age / (1 + u)``,
  which prefers colder segments at equal utilization.

The cleaner runs in two circumstances, matching Section 4.4: on demand when
the log runs out of clean segments (its cost then lands directly on the
triggering write -- the cleaner-dominated regime of Figure 8), and during
idle periods ("we have modified the cleaner so that it can be invoked
during idle periods before it runs out of free space", the knob Figure 10
sweeps).  Because it moves whole segments, it can only exploit idle
intervals long enough for segment-sized work -- the contrast with the VLD
compactor that Figures 10 and 11 make.
"""

from __future__ import annotations

import enum
from typing import List, Optional, TYPE_CHECKING

from repro.sim.stats import Breakdown

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.lfs.lfs import LFS


class CleanerPolicy(enum.Enum):
    GREEDY = "greedy"
    COST_BENEFIT = "cost_benefit"


class Cleaner:
    """Segment cleaner bound to one LFS instance."""

    def __init__(
        self, fs: "LFS", policy: CleanerPolicy = CleanerPolicy.COST_BENEFIT
    ) -> None:
        self.fs = fs
        self.policy = policy
        self.segments_cleaned = 0
        self.blocks_copied = 0

    # ------------------------------------------------------------------

    def select_victim(self, force_greedy: bool = False) -> Optional[int]:
        """Pick the next segment to clean (never the writer's current).

        ``force_greedy`` is used for *forced* cleaning (out of clean
        segments): the minimum-live victim maximises net space gain per
        step, which is what guarantees forward progress near full.
        """
        usage = self.fs.segusage
        current = self.fs.writer.current_segment
        candidates: List[int] = [
            s
            for s in usage.dirty_segments(exclude=current)
            if usage.live_bytes[s] < self.fs.layout.segment_bytes
        ]
        if not candidates:
            return None
        if force_greedy or self.policy is CleanerPolicy.GREEDY:
            return min(candidates, key=lambda s: usage.live_bytes[s])
        now = self.fs.clock.now
        def benefit(s: int) -> float:
            u = usage.utilization(s)
            age = max(0.0, now - usage.last_write[s])
            return (1.0 - u) * (age + 1e-9) / (1.0 + u)
        return max(candidates, key=benefit)

    def clean_one(self, force_greedy: bool = False) -> Optional[Breakdown]:
        """Clean a single victim segment; None when nothing is cleanable."""
        victim = self.select_victim(force_greedy)
        if victim is None:
            return None
        breakdown = self.fs.copy_live_blocks(victim)
        self.segments_cleaned += 1
        return breakdown

    def clean_until_free(self, target_clean: int, limit: int = 0) -> Breakdown:
        """Clean until ``target_clean`` reusable segments exist."""
        breakdown = Breakdown()
        usage = self.fs.segusage
        current = self.fs.writer.current_segment
        attempts = 0
        max_attempts = limit or 4 * usage.num_segments
        while True:
            available = len(usage.clean_segments(exclude=current)) + len(
                usage.reclaimable(exclude=current)
            )
            if available >= target_clean:
                break
            attempts += 1
            if attempts > max_attempts:
                break
            # The configured policy drives victim selection; only at the
            # very floor does greedy take over (maximum net gain per step
            # guarantees forward progress near full).
            result = self.clean_one(force_greedy=available <= 1)
            if result is None:
                break
            breakdown.add(result)
        return breakdown

    def run_idle(self, deadline: float) -> Breakdown:
        """Clean segments until the clock passes ``deadline``.

        Segment-sized granularity: a victim is only attacked when there is
        still time left; once started, the copy runs to completion (which
        is why short idle intervals buy LFS nothing -- Figure 10).
        """
        breakdown = Breakdown()
        usage = self.fs.segusage
        # Stop early when the disk is already mostly clean.
        while self.fs.clock.now < deadline:
            current = self.fs.writer.current_segment
            if not usage.dirty_segments(exclude=current):
                break
            if len(usage.clean_segments(exclude=current)) >= (
                usage.num_segments // 2
            ):
                break
            result = self.clean_one()
            if result is None:
                break
            breakdown.add(result)
        return breakdown
