"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures, prints the
rows/series the paper reports (simulated time), and asserts the figure's
qualitative shape.  ``pytest-benchmark`` wraps the run so wall-clock cost of
the reproduction itself is also tracked.

Set ``REPRO_BENCH_FULL=1`` for paper-scale workloads (slower); the default
scale preserves every shape at a fraction of the runtime.

The experiment sweeps honour the harness's parallel/caching engine here
too: ``--sweep-jobs N`` fans each figure's grid points across ``N``
worker processes (env fallback ``REPRO_BENCH_JOBS``), ``--sweep-cache
DIR`` memoizes point results content-addressed on code+params,
``--sweep-no-cache`` forces recomputation, and ``--sweep-cache-stats``
prints hit/miss totals at the end of the session.
"""

import os

import pytest

from repro.harness import sweep
from repro.harness.cache import ResultCache


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def scale():
    return 1.0 if full_scale() else 0.25


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def pytest_addoption(parser):
    group = parser.getgroup("sweep", "experiment sweep execution")
    group.addoption(
        "--sweep-jobs", type=int, metavar="N",
        default=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        help="worker processes per experiment sweep (default: 1)",
    )
    group.addoption(
        "--sweep-cache", metavar="DIR", default=None,
        help="content-addressed result cache directory (default: off)",
    )
    group.addoption(
        "--sweep-no-cache", action="store_true",
        help="bypass the sweep result cache even if --sweep-cache is set",
    )
    group.addoption(
        "--sweep-cache-stats", action="store_true",
        help="print sweep cache/executor statistics after the session",
    )


@pytest.fixture(scope="session", autouse=True)
def _sweep_defaults(request):
    jobs = max(1, request.config.getoption("--sweep-jobs"))
    cache_dir = request.config.getoption("--sweep-cache")
    cache = (
        ResultCache(cache_dir)
        if cache_dir and not request.config.getoption("--sweep-no-cache")
        else None
    )
    sweep.reset_stats()
    with sweep.configured(jobs=jobs, cache=cache):
        yield
    if request.config.getoption("--sweep-cache-stats"):
        stats = sweep.reset_stats()
        print(f"\n[sweep] {stats.summary()}")
