#!/usr/bin/env python3
"""Transaction-commit latency: the paper's motivating application class.

The introduction motivates fast small synchronous writes with recoverable
virtual memory, persistent object stores, and databases: systems whose
commit path is a small synchronous write.  This example models a tiny
write-ahead-logging database running over UFS and measures transaction
commit latency on an update-in-place disk versus a Virtual Log Disk, at a
realistic disk utilization.

Run:  python examples/database_commit.py
"""

import random

from repro.blockdev import build_device_stack
from repro.disk import Disk, ST19101
from repro.hosts import SPARCSTATION_10
from repro.sim.stats import LatencyRecorder
from repro.ufs import UFS

_MB = 1 << 20
PAGE = 4096


class TinyDatabase:
    """A minimal WAL database: commit = sync log append + page update."""

    def __init__(self, fs, pages: int, rng: random.Random) -> None:
        self.fs = fs
        self.pages = pages
        self.rng = rng
        self.log_offset = 0
        fs.create("/db.log")
        fs.create("/db.pages")
        # Preallocate the table space.
        chunk = bytes(PAGE) * 64
        for offset in range(0, pages * PAGE, len(chunk)):
            fs.write("/db.pages", offset, chunk)
        fs.sync()
        fs.drop_caches()

    def commit(self, recorder: LatencyRecorder) -> None:
        """One transaction: update a random page, commit via the log."""
        page = self.rng.randrange(self.pages)
        payload = bytes([self.rng.randrange(256)]) * PAGE
        total = self.fs.write(
            "/db.log", self.log_offset, payload, sync=True
        )
        self.log_offset = (self.log_offset + PAGE) % (2 * _MB)
        total.add(
            self.fs.write("/db.pages", page * PAGE, payload, sync=True)
        )
        recorder.record(total)


def run_atomic_vld(transactions: int, pages: int) -> LatencyRecorder:
    """No WAL at all: the virtual log's native atomicity commits the page
    update in a single atomic batch (Section 3.2's transaction claim)."""
    from repro.vlog.transactions import TransactionalVLD

    rng = random.Random(42)
    tvld = TransactionalVLD(Disk(ST19101))
    host = SPARCSTATION_10
    recorder = LatencyRecorder()
    for _ in range(transactions):
        page = rng.randrange(pages)
        payload = bytes([rng.randrange(256)]) * PAGE
        breakdown = tvld.write_atomic([(page, payload)])
        host_cost = host.request_overhead(1)
        tvld.disk.clock.advance(host_cost)
        breakdown.charge("other", host_cost)
        recorder.record(breakdown)
    return recorder


def main() -> None:
    transactions = 300
    pages = (10 * _MB) // PAGE

    print("Tiny WAL database: commit = sync log append + sync page write")
    print(f"table space 10 MB, {transactions} transactions\n")

    results = {}
    for label, device_type in (
        ("UFS on regular disk", "regular"),
        ("UFS on virtual log disk", "vld"),
    ):
        rng = random.Random(42)
        device = build_device_stack(Disk(ST19101), device_type)
        fs = UFS(device, SPARCSTATION_10)
        db = TinyDatabase(fs, pages, rng)
        recorder = LatencyRecorder()
        for _ in range(transactions):
            db.commit(recorder)
        results[label] = recorder
        print(
            f"  {label:26}: {recorder.mean() * 1e3:6.2f} ms/commit "
            f"(p95 {recorder.percentile(0.95) * 1e3:6.2f} ms)"
        )

    atomic = run_atomic_vld(transactions, pages)
    results["atomic VLD (no WAL)"] = atomic
    print(
        f"  {'atomic VLD (no WAL)':26}: {atomic.mean() * 1e3:6.2f} ms/commit "
        f"(p95 {atomic.percentile(0.95) * 1e3:6.2f} ms)"
    )

    speedup = (
        results["UFS on regular disk"].mean()
        / results["UFS on virtual log disk"].mean()
    )
    atomic_speedup = (
        results["UFS on regular disk"].mean() / atomic.mean()
    )
    print(f"\n  -> WAL commits are {speedup:.1f}x faster on the VLD: the log")
    print("     append and the page update both land near the disk head")
    print("     instead of paying a seek plus half a rotation each.")
    print(f"  -> the virtual log's native atomicity goes {atomic_speedup:.1f}x:")
    print("     the page update commits atomically by itself, so the")
    print("     write-ahead log disappears entirely.")


if __name__ == "__main__":
    main()
