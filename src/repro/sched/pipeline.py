"""The overlapped host/disk pipeline.

A closed-loop host alternates between *thinking* (preparing the next
request) and *submitting*.  Without a queue, think time and disk time
serialize; with one, the host thinks while the disk drains its backlog.
:class:`HostPipeline` models that overlap on the simulator's single
clock with the classic pipeline approximation ``max(think, service)``:

* queue empty -- the disk is idle, so host think time is the critical
  path and advances the clock;
* requests outstanding -- the disk is busy for at least one full service
  (atomic in the closed-form engine, and in the sweep's regime much
  longer than a think interval), so the think happens *during* time the
  services already put on the clock and is hidden.

Submission never blocks until the queue reaches ``queue_depth``; at that
point the next submit services one request first -- the host waiting on a
completion.  At ``queue_depth=1`` every submit services synchronously and
the seed's serialized timing is reproduced exactly.  The approximation
overstates overlap when think intervals exceed service times
(``think_hidden_seconds`` reports how much think time was hidden, so a
caller can bound the error).

Engine mode (:meth:`HostPipeline.process`) removes the approximation
entirely: the pipeline becomes an event-engine process whose think time
is a real timer and whose waits are real completion events, so overlap
*emerges* from the event loop -- and is measured exactly from the
recorded think/service intervals -- instead of being inferred.  The
multi-host driver (:mod:`repro.hosts.multihost`) runs N of these
processes against M scheduler processes.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, Tuple

from repro.sched.scheduler import DiskRequest, DiskScheduler
from repro.sim.engine import EventEngine
from repro.sim.stats import Breakdown


class HostPipeline:
    """Drives a :class:`DiskScheduler` with host think time overlapped
    against queued request service.

    Args:
        scheduler: The request queue to drive.
        think_seconds: Host compute time preceding each submission.
    """

    def __init__(
        self, scheduler: DiskScheduler, think_seconds: float = 0.0
    ) -> None:
        if think_seconds < 0.0:
            raise ValueError("think time must be non-negative")
        self.scheduler = scheduler
        self.think_seconds = think_seconds
        self.submitted = 0
        #: Think time that overlapped disk service instead of advancing
        #: the clock.
        self.think_hidden_seconds = 0.0

    def _think(self) -> None:
        if self.think_seconds <= 0.0:
            return
        if self.scheduler.outstanding:
            # The disk is mid-backlog: the host's preparation of the next
            # request hides behind service time already on the clock.
            self.think_hidden_seconds += self.think_seconds
            return
        self.scheduler.disk.clock.advance(self.think_seconds)

    def write(
        self,
        sector: int,
        count: int = 1,
        data: Optional[bytes] = None,
        charge_scsi: bool = True,
    ) -> DiskRequest:
        self._think()
        self.submitted += 1
        return self.scheduler.write(sector, count, data, charge_scsi)

    def read(
        self, sector: int, count: int = 1, charge_scsi: bool = True
    ) -> Tuple[bytes, Breakdown]:
        self._think()
        self.submitted += 1
        return self.scheduler.read(sector, count, charge_scsi)

    def finish(self) -> Breakdown:
        """Drain the queue (end of the run: the host stops submitting)."""
        return self.scheduler.drain()

    def process(
        self,
        engine: EventEngine,
        ops: Iterable[Tuple[str, int, int, Optional[bytes]]],
        name: str = "host",
    ) -> Generator:
        """The pipeline as an engine process (closed loop).

        For each ``(op, sector, count, data)``: think for
        ``think_seconds`` of real engine time (recorded as a ``"think"``
        interval keyed by ``name``), submit to the scheduler's disk
        process, and wait for the completion event.  Requires the
        scheduler to be engine-attached.  ``think_hidden_seconds`` is not
        accumulated here -- hidden think time is computed exactly from
        the recorded intervals (``engine.intervals.per_key_overlap``)
        rather than approximated.
        """
        for op, sector, count, data in ops:
            if self.think_seconds > 0.0:
                start = engine.now
                yield self.think_seconds
                engine.intervals.note("think", name, start, engine.now)
            self.submitted += 1
            req = self.scheduler.submit(op, sector, count, data)
            if not req.done:
                assert req.completed is not None
                yield req.completed
