"""Composed-fault torture harness for the virtual log disk.

Each :func:`torture_point` is a *pure, seeded* sweep point (the same
contract every figure uses, so the fault matrix rides the PR-3 sweep
engine unchanged): build a small VLD, drive a seeded workload through a
:class:`~repro.blockdev.interpose.DiskFaultInjector` composing
crash-after-N physical writes, torn final writes, per-sector flaky media
and an uncorrelated read-error floor; crash; recover; run the online
:func:`~repro.vlog.resilience.vlfsck` checker; and differentially
compare every acknowledged block against an in-memory oracle.

The oracle is strict about durability semantics: a block whose write was
*acknowledged* must read back exactly; the blocks of the one request in
flight at the crash may legally read old **or** new (the VLD's commit
point is the map-chunk append, so either side of it is a consistent
outcome); everything else must be what it was.  Transient (flaky) media
errors must be recoverable by retry -- the harness re-drives a failed
logical read a bounded number of times before declaring data loss.

A failing point is a JSON-serializable fault plan, and
:func:`minimize` shrinks it -- first the op count, then the crash point
-- to the smallest plan that still fails, which :func:`write_repro`
drops into ``torture-repro/`` as a self-contained reproduction recipe
(this is what CI uploads on failure).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.blockdev.interpose import (
    DeviceCrashed,
    DiskFaultInjector,
    FaultDevice,
    FaultPlan,
)
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.harness.sweep import SweepPoint, run_sweep
from repro.sim.clock import SimClock
from repro.vlog.resilience import MediaError, vlfsck
from repro.vlog.vld import VirtualLogDisk
from repro.volume import ShardUnavailable, ShardedVolume, volume_fsck

#: Logical span the workloads touch (blocks); small enough that every
#: point runs in a couple of seconds, large enough to span many tracks.
SPAN = 256

#: How many times the harness re-drives a logical read that exhausted
#: the drive's own retries.  Flaky sectors are *transient*: a read that
#: stays dead through drive retries x harness retries is data loss.
HARNESS_READ_RETRIES = 10

#: Ops appended after recovery to prove the device is fully serviceable
#: (allocator, compactor, and scrubber all run on the recovered state).
CONTINUE_OPS = 20


# ======================================================================
# Workloads: seeded generators of (op, lba, count-or-seconds) tuples
# ======================================================================

Op = Tuple[str, int, float]


def _ops_small_writes(rng) -> Iterator[Op]:
    """Uniform single-block writes with occasional read-back."""
    while True:
        lba = rng.randrange(SPAN)
        yield ("write", lba, 1)
        if rng.random() < 0.25:
            yield ("read", rng.randrange(SPAN), 1)


def _ops_overwrites(rng) -> Iterator[Op]:
    """A hot set hammered in place -- maximizes dead map records and
    compactor work, the paper's 'monitor overwrites' path."""
    hot = [rng.randrange(SPAN) for _ in range(16)]
    while True:
        yield ("write", rng.choice(hot), 1)
        if rng.random() < 0.15:
            yield ("read", rng.choice(hot), 1)


def _ops_sequential(rng) -> Iterator[Op]:
    """Multi-block sequential runs (torn-write bait: a crash mid-run
    commits a prefix) followed by sequential read-back."""
    while True:
        start = rng.randrange(SPAN - 8)
        count = rng.randrange(2, 8)
        yield ("write", start, count)
        if rng.random() < 0.3:
            yield ("read", start, count)


def _ops_trims(rng) -> Iterator[Op]:
    """Writes interleaved with trims, so recovery must tell a trimmed
    block from a never-written one."""
    while True:
        lba = rng.randrange(SPAN)
        if rng.random() < 0.3:
            yield ("trim", lba, rng.randrange(1, 4))
        else:
            yield ("write", lba, 1)


def _ops_bursty_idle(rng) -> Iterator[Op]:
    """Write bursts separated by idle gaps: the compactor (and, once
    suspects exist, the scrubber) runs *during* the fault window."""
    while True:
        for _ in range(rng.randrange(4, 10)):
            yield ("write", rng.randrange(SPAN), 1)
        yield ("idle", 0, 0.05 + rng.random() * 0.1)


WORKLOADS: Dict[str, Callable[[Any], Iterator[Op]]] = {
    "small_writes": _ops_small_writes,
    "overwrites": _ops_overwrites,
    "sequential": _ops_sequential,
    "trims": _ops_trims,
    "bursty_idle": _ops_bursty_idle,
}


# ======================================================================
# The oracle
# ======================================================================

def _payload(block_size: int, lba: int, version: int, seed: int) -> bytes:
    """Deterministic block contents for (lba, version): version 0 is the
    all-zero never-written/trimmed state."""
    if version == 0:
        return bytes(block_size)
    word = struct.pack("<IIII", lba & 0xFFFFFFFF, version & 0xFFFFFFFF,
                       seed & 0xFFFFFFFF,
                       zlib.crc32(struct.pack("<II", lba, version)))
    return (word * (block_size // len(word) + 1))[:block_size]


class _Oracle:
    """Differential model of what every logical block must read as.

    ``committed`` maps lba -> version (0 == zeros).  While a request is
    in flight, each of its blocks also carries a tentative new version
    in ``pending``; a crash freezes those as *acceptable alternatives*
    until the post-recovery audit resolves which side of the commit
    point each block landed on.
    """

    def __init__(self, block_size: int, seed: int) -> None:
        self.block_size = block_size
        self.seed = seed
        self.committed: Dict[int, int] = {}
        self.pending: Dict[int, int] = {}
        self._next_version = 1

    def begin_write(self, lba: int, count: int) -> bytes:
        pieces = []
        for i in range(count):
            version = self._next_version
            self._next_version += 1
            self.pending[lba + i] = version
            pieces.append(_payload(self.block_size, lba + i, version,
                                   self.seed))
        return b"".join(pieces)

    def begin_trim(self, lba: int, count: int) -> None:
        for i in range(count):
            self.pending[lba + i] = 0

    def ack(self) -> None:
        self.committed.update(self.pending)
        self.pending.clear()

    def acceptable(self, lba: int) -> List[int]:
        versions = [self.committed.get(lba, 0)]
        if lba in self.pending and self.pending[lba] not in versions:
            versions.append(self.pending[lba])
        return versions

    def expected(self, lba: int) -> bytes:
        return _payload(self.block_size, lba,
                        self.committed.get(lba, 0), self.seed)

    def audit(self, read_block: Callable[[int], Optional[bytes]],
              failures: List[str]) -> None:
        """Post-recovery: check every block ever touched, resolving the
        crashed request's blocks to whichever side actually persisted."""
        for lba in sorted(set(self.committed) | set(self.pending)):
            actual = read_block(lba)
            if actual is None:
                failures.append(f"lba {lba}: unreadable after retries")
                continue
            versions = self.acceptable(lba)
            for version in versions:
                if actual == _payload(self.block_size, lba, version,
                                      self.seed):
                    self.committed[lba] = version
                    break
            else:
                failures.append(
                    f"lba {lba}: contents match none of the acceptable "
                    f"versions {versions}"
                )
        self.pending.clear()


# ======================================================================
# One torture point
# ======================================================================

def _pick_flaky(rng, vld: VirtualLogDisk, count: int,
                rate: float) -> Dict[int, float]:
    """Seeded flaky sectors drawn from the *currently used* physical
    footprint (data blocks and live map records), so the degradation is
    guaranteed to sit under live state -- sectors picked uniformly over
    a mostly-empty disk would almost never be read at all.  The
    power-down block never qualifies (both allocators reserve it)."""
    spb = vld.sectors_per_block
    map_spb = vld.vlog.sectors_per_block
    candidates: List[int] = []
    for block in sorted(vld.reverse):
        candidates.extend(range(block * spb, (block + 1) * spb))
    for record in sorted(vld.vlog.live_blocks()):
        candidates.extend(
            range(record * map_spb, (record + 1) * map_spb)
        )
    flaky: Dict[int, float] = {}
    while candidates and len(flaky) < count:
        flaky[candidates[rng.randrange(len(candidates))]] = rate
    return flaky


def torture_point(
    workload: str = "small_writes",
    ops: int = 120,
    crash_after: Optional[int] = None,
    torn: bool = True,
    read_error_rate: float = 0.0,
    flaky: int = 0,
    flaky_rate: float = 0.0,
    queue_depth: int = 1,
    sched: str = "fifo",
    nvm: bool = False,
    nvm_crash_after: Optional[int] = None,
    nvm_torn: bool = False,
    nvm_cap_kb: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Run one composed-fault scenario end to end; returns a
    JSON-serializable verdict (``ok`` plus diagnostics).

    ``queue_depth``/``sched`` configure the VLD's internal request
    scheduler: depth > 1 runs the batched data-movement path with whole
    runs queued as single requests, so a crash can land between the run
    writes and the map commit -- the recovery audit still demands
    old-or-new contents for every block.

    ``nvm`` threads an :class:`~repro.nvm.NVWal` write-ahead tier
    between the workload and the VLD; ``nvm_crash_after`` arms power
    loss at the N-th NVM log append (``nvm_torn``: that append persists
    only a prefix), so the crash lands exactly between NVM commit and
    destage, and ``nvm_cap_kb`` bounds the log so pressure destages put
    the run in a mixed destaged/NVM-only state first.  The oracle is
    unchanged: every acked write must read back new, the interrupted op
    old-or-new.
    """
    import random

    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; "
                         f"try one of {sorted(WORKLOADS)}")
    rng = random.Random(seed)
    disk = Disk(ST19101, num_cylinders=6)
    vld = VirtualLogDisk(disk, queue_depth=queue_depth, sched=sched)
    if nvm:
        from repro.blockdev.nvm import NVM_SPECS
        from repro.nvm import NVWal, NVWalInjector

        spec = NVM_SPECS["nvdimm"]
        if nvm_cap_kb is not None:
            spec = spec.with_overrides(capacity_bytes=nvm_cap_kb << 10)
        device = NVWal(vld, spec=spec)
        if nvm_crash_after is not None:
            device.injector = NVWalInjector(nvm_crash_after, torn=nvm_torn)
    else:
        device = vld
    oracle = _Oracle(vld.block_size, seed)
    failures: List[str] = []

    flaky_sectors: Dict[int, float] = {}
    injector = DiskFaultInjector(
        crash_after_writes=crash_after,
        torn=torn,
        read_error_rate=read_error_rate,
        seed=seed,
    ).install(disk)

    def read_block(lba: int) -> Optional[bytes]:
        for _ in range(HARNESS_READ_RETRIES):
            try:
                data, _cost = device.read_block(lba)
                return data
            except MediaError:
                continue
        return None

    def run_ops(op_iter: Iterator[Op], budget: int) -> int:
        """Drive ``budget`` ops; returns the index of the op the crash
        interrupted, or -1 when all completed."""
        for index in range(budget):
            op, lba, arg = next(op_iter)
            try:
                if op == "write":
                    data = oracle.begin_write(lba, int(arg))
                    device.write_blocks(lba, int(arg), data)
                    oracle.ack()
                elif op == "trim":
                    oracle.begin_trim(lba, int(arg))
                    device.trim(lba, int(arg))
                    oracle.ack()
                elif op == "idle":
                    device.idle(float(arg))
                else:  # read
                    count = int(arg)
                    actual = None
                    for _ in range(HARNESS_READ_RETRIES):
                        try:
                            actual, _cost = device.read_blocks(lba, count)
                            break
                        except MediaError:
                            continue
                    if actual is None:
                        failures.append(
                            f"op {index}: read lba {lba} x{count} stayed "
                            f"unreadable through retries"
                        )
                        continue
                    for i in range(count):
                        piece = actual[i * vld.block_size:
                                       (i + 1) * vld.block_size]
                        if piece != oracle.expected(lba + i):
                            failures.append(
                                f"op {index}: read lba {lba + i} returned "
                                f"stale or corrupt contents"
                            )
            except DeviceCrashed:
                return index
        return -1

    # A short fault-free warmup lays down live state; the flaky sectors
    # are then seeded *under* it, so the rest of the run -- and the
    # recovery scan -- genuinely read degraded media.
    op_iter = WORKLOADS[workload](random.Random(seed ^ 0x5EED))
    warmup = min(8, ops // 4)
    crashed_at = run_ops(op_iter, warmup)
    if crashed_at < 0:
        if flaky:
            flaky_sectors.update(_pick_flaky(rng, vld, flaky, flaky_rate))
            injector.flaky_sectors.update(flaky_sectors)
        rest = run_ops(op_iter, ops - warmup)
        crashed_at = -1 if rest < 0 else warmup + rest
    orderly = crashed_at < 0
    if orderly and crash_after is None:
        # No crash machinery at all: model an orderly shutdown so the
        # power-record path recovers under the same flaky media.
        device.power_down()

    # ------------------------------------------------------------------
    # Crash, clear the crash machinery (media degradation persists),
    # recover, audit.
    # ------------------------------------------------------------------
    injector.uninstall(disk)
    injector = DiskFaultInjector(
        read_error_rate=read_error_rate,
        seed=seed + 1,
        flaky_sectors=flaky_sectors,
    ).install(disk)
    if nvm:
        device.injector = None  # crash machinery cleared before recovery
    device.crash()
    outcome = device.recover()

    report = vlfsck(vld, deep=True)
    for violation in report.violations:
        failures.append(f"vlfsck: {violation.kind}: {violation.detail}")
    oracle.audit(read_block, failures)

    # ------------------------------------------------------------------
    # Keep going: the recovered device must be fully serviceable.
    # ------------------------------------------------------------------
    if run_ops(op_iter, CONTINUE_OPS) >= 0:
        failures.append("continue phase crashed with no injector armed")
    device.idle(0.2)  # let the scrubber drain any suspects
    final = vlfsck(vld, deep=True)
    for violation in final.violations:
        failures.append(f"final vlfsck: {violation.kind}: "
                        f"{violation.detail}")
    oracle.audit(read_block, failures)

    resilience = vld.resilience
    assert resilience is not None
    return {
        "ok": not failures,
        "failures": failures,
        "workload": workload,
        "ops": ops,
        "crashed_at": crashed_at if crashed_at >= 0 else None,
        "orderly": orderly,
        "recovery": {
            "used_power_down_record": outcome.used_power_down_record,
            "scanned": outcome.scanned,
            "degraded": outcome.degraded,
            "reconstructed": outcome.reconstructed,
            "records_read": outcome.records_read,
            "media_errors": outcome.media_errors,
            "quarantined_sectors": outcome.quarantined_sectors,
        },
        "fsck": {
            "checked_records": final.checked_records,
            "checked_blocks": final.checked_blocks,
        },
        "counters": {
            "media_errors": resilience.media_errors,
            "retries": resilience.retries,
            "checksum_failures": resilience.checksum_failures,
            "quarantined": len(resilience.quarantine),
            "sectors_scrubbed": resilience.scrubber.sectors_scrubbed,
            "blocks_migrated": resilience.scrubber.blocks_migrated,
        },
        "nvm": {
            "replayed_records": outcome.replayed_records,
            "replayed_blocks": outcome.replayed_blocks,
            "torn_tail": outcome.torn_tail,
            "absorbed_writes": device.absorbed_writes,
            "pressure_destages": device.pressure_destages,
        } if nvm else None,
    }


# ======================================================================
# One *volume* torture point: multi-shard composed plans
# ======================================================================

#: Ops driven at the volume while one shard is down, proving healthy
#: shards keep serving and down-shard requests fail *boundedly*.
DEGRADED_OPS = 24


def volume_torture_point(
    workload: str = "small_writes",
    ops: int = 140,
    shards: int = 3,
    stripe_blocks: int = 8,
    crash_shard: Optional[int] = None,
    crash_after: Optional[int] = None,
    torn: bool = True,
    slow_shard: Optional[int] = None,
    slow_factor: float = 1.0,
    slow_after: Optional[int] = None,
    slow_ops: Optional[int] = None,
    flaky_shard: Optional[int] = None,
    flaky: int = 0,
    flaky_rate: float = 0.0,
    read_error_rate: float = 0.0,
    queue_depth: int = 1,
    sched: str = "fifo",
    seed: int = 0,
) -> Dict[str, Any]:
    """One multi-shard composed-fault scenario, end to end.

    Fault domains are per shard: the crash injector arms only
    ``crash_shard``'s raw disk, the fail-slow plan wraps only
    ``slow_shard``'s stack, flaky sectors degrade only ``flaky_shard``.
    After the crash the harness keeps driving the volume through a
    *degraded window* -- ops that touch only healthy shards must
    succeed; ops needing the down shard must fail with the bounded
    :class:`ShardUnavailable`, never hang -- then recovers **only** the
    crashed shard, runs the volume-level fsck (deep), and audits every
    block differentially, exactly like the single-device point.
    """
    import random

    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; "
                         f"try one of {sorted(WORKLOADS)}")
    rng = random.Random(seed)
    clock = SimClock()
    disks = [
        Disk(ST19101, clock=clock, num_cylinders=6) for _ in range(shards)
    ]
    devices: List[Any] = []
    for index, disk in enumerate(disks):
        vld = VirtualLogDisk(disk, queue_depth=queue_depth, sched=sched)
        if index == slow_shard and slow_factor > 1.0:
            devices.append(FaultDevice(vld, FaultPlan(
                seed=seed,
                slow_factor=slow_factor,
                slow_after_ops=slow_after,
                slow_duration_ops=slow_ops,
            )))
        else:
            devices.append(vld)
    volume = ShardedVolume(devices, stripe_blocks=stripe_blocks)
    oracle = _Oracle(volume.block_size, seed)
    failures: List[str] = []

    flaky_sectors: Dict[int, float] = {}
    crash_injector: Optional[DiskFaultInjector] = None
    if crash_shard is not None and crash_after is not None:
        crash_injector = DiskFaultInjector(
            crash_after_writes=crash_after,
            torn=torn,
            read_error_rate=read_error_rate,
            seed=seed,
        ).install(disks[crash_shard])
    flaky_injector: Optional[DiskFaultInjector] = None

    def read_block(lba: int) -> Optional[bytes]:
        for _ in range(HARNESS_READ_RETRIES):
            try:
                data, _cost = volume.read_block(lba)
                return data
            except MediaError:
                continue
        return None

    #: lba -> versions a failed request *may* have left on the down
    #: shard (old remains acceptable too).  Kept outside the oracle so a
    #: later successful op's ``ack()`` cannot commit them by mistake;
    #: the post-recovery audit folds them back in as candidates.
    frozen: Dict[int, List[int]] = {}

    def resolve_pending(down: Optional[int]) -> None:
        """After a mid-stripe-write failure, settle the oracle's pending
        versions: blocks on *healthy* shards read back immediately (each
        sub-write either fully committed or never issued); blocks on the
        down shard freeze as acceptable candidates for the
        post-recovery audit."""
        for lba in sorted(oracle.pending):
            version = oracle.pending.pop(lba)
            shard, _ = volume.shard_of(lba)
            if shard == down:
                frozen.setdefault(lba, []).append(version)
                continue
            actual = read_block(lba)
            if actual is None:
                failures.append(
                    f"degraded resolve: lba {lba} unreadable on a "
                    f"healthy shard"
                )
                continue
            for candidate in (oracle.committed.get(lba, 0), version):
                if actual == _payload(volume.block_size, lba, candidate,
                                      seed):
                    oracle.committed[lba] = candidate
                    break
            else:
                failures.append(
                    f"degraded resolve: lba {lba} matches none of the "
                    f"acceptable versions"
                )

    def audit() -> None:
        """Post-recovery differential audit over every touched block,
        accepting old-or-any-frozen for blocks whose writes the down
        shard interrupted."""
        touched = (
            set(oracle.committed) | set(oracle.pending) | set(frozen)
        )
        for lba in sorted(touched):
            actual = read_block(lba)
            if actual is None:
                failures.append(f"lba {lba}: unreadable after retries")
                continue
            candidates = [oracle.committed.get(lba, 0)]
            if lba in oracle.pending:
                candidates.append(oracle.pending[lba])
            candidates.extend(frozen.get(lba, ()))
            for version in candidates:
                if actual == _payload(volume.block_size, lba, version,
                                      seed):
                    oracle.committed[lba] = version
                    break
            else:
                failures.append(
                    f"lba {lba}: contents match none of the acceptable "
                    f"versions {candidates}"
                )
        oracle.pending.clear()
        frozen.clear()

    degraded_stats = {"ops": 0, "unavailable": 0, "healthy_ok": 0}

    def run_ops(op_iter: Iterator[Op], budget: int,
                down: Optional[int] = None) -> int:
        """Drive ``budget`` volume ops; returns the index of the op a
        *new* shard crash interrupted, or -1.  With ``down`` set (the
        degraded window), :class:`ShardUnavailable` against that shard
        is the expected bounded error; against any other shard it is a
        failure."""
        for index in range(budget):
            op, lba, arg = next(op_iter)
            if down is not None:
                degraded_stats["ops"] += 1
            try:
                if op == "write":
                    data = oracle.begin_write(lba, int(arg))
                    volume.write_blocks(lba, int(arg), data)
                    oracle.ack()
                elif op == "trim":
                    oracle.begin_trim(lba, int(arg))
                    volume.trim(lba, int(arg))
                    oracle.ack()
                elif op == "idle":
                    volume.idle(float(arg))
                else:  # read
                    count = int(arg)
                    actual = None
                    for _ in range(HARNESS_READ_RETRIES):
                        try:
                            actual, _cost = volume.read_blocks(lba, count)
                            break
                        except MediaError:
                            continue
                    if actual is None:
                        failures.append(
                            f"op {index}: read lba {lba} x{count} stayed "
                            f"unreadable through retries"
                        )
                        continue
                    for i in range(count):
                        piece = actual[i * volume.block_size:
                                       (i + 1) * volume.block_size]
                        if piece != oracle.expected(lba + i):
                            failures.append(
                                f"op {index}: read lba {lba + i} returned "
                                f"stale or corrupt contents"
                            )
                if down is not None:
                    degraded_stats["healthy_ok"] += 1
            except ShardUnavailable as fault:
                if down is None:
                    # The crash moment itself: the volume turned the
                    # shard's DeviceCrashed into a bounded error.
                    resolve_pending(fault.shard)
                    return index
                degraded_stats["unavailable"] += 1
                if fault.shard != down:
                    failures.append(
                        f"degraded op {index}: shard {fault.shard} "
                        f"unavailable but only shard {down} is down"
                    )
                resolve_pending(down)
            except DeviceCrashed:
                # Should not escape the volume -- it maps crashes to
                # ShardUnavailable -- but never let the harness hang on
                # the difference.
                failures.append(
                    f"op {index}: raw DeviceCrashed escaped the volume"
                )
                return index
        return -1

    # Warmup (fault-free on flaky terms), then seed flaky sectors under
    # the flaky shard's live footprint, then the main faulted phase.
    op_iter = WORKLOADS[workload](random.Random(seed ^ 0x5EED))
    warmup = min(8, ops // 4)
    crashed_at = run_ops(op_iter, warmup)
    if crashed_at < 0:
        if flaky_shard is not None and flaky:
            flaky_sectors.update(_pick_flaky(
                rng, devices[flaky_shard], flaky, flaky_rate
            ))
            flaky_injector = DiskFaultInjector(
                seed=seed,
                flaky_sectors=flaky_sectors,
            ).install(disks[flaky_shard])
        rest = run_ops(op_iter, ops - warmup)
        crashed_at = -1 if rest < 0 else warmup + rest
    crashed = crashed_at >= 0

    # ------------------------------------------------------------------
    # Degraded window: one shard down, siblings must keep serving.
    # ------------------------------------------------------------------
    down_shard: Optional[int] = None
    if crashed:
        down = [
            i for i, state in enumerate(volume.states)
            if state.value == "down"
        ]
        if len(down) != 1 or (
            crash_shard is not None and down != [crash_shard]
        ):
            failures.append(
                f"fault containment broken: down shards {down}, "
                f"expected [{crash_shard}]"
            )
        down_shard = down[0] if down else crash_shard
        run_ops(op_iter, DEGRADED_OPS, down=down_shard)

    # ------------------------------------------------------------------
    # Clear crash machinery (media degradation persists), recover ONLY
    # the crashed shard -- or the whole volume after an orderly stop.
    # ------------------------------------------------------------------
    if crash_injector is not None:
        crash_injector.uninstall(disks[crash_shard])
    if flaky_injector is not None:
        flaky_injector.uninstall(disks[flaky_shard])
        flaky_injector = DiskFaultInjector(
            seed=seed + 1,
            flaky_sectors=flaky_sectors,
        ).install(disks[flaky_shard])
    if crashed and down_shard is not None:
        outcome = volume.recover_shard(down_shard)
        recovery = {
            "shard": down_shard,
            "used_power_down_record": outcome.used_power_down_record,
            "scanned": outcome.scanned,
            "degraded": outcome.degraded,
            "reconstructed": outcome.reconstructed,
            "media_errors": outcome.media_errors,
            "quarantined_sectors": outcome.quarantined_sectors,
        }
    else:
        volume.power_down()
        volume.crash()
        outcomes = volume.recover()
        recovery = {
            "shard": None,
            "used_power_down_record": all(
                o.used_power_down_record for o in outcomes
            ),
            "scanned": any(o.scanned for o in outcomes),
            "degraded": any(o.degraded for o in outcomes),
            "reconstructed": any(o.reconstructed for o in outcomes),
            "media_errors": sum(o.media_errors for o in outcomes),
            "quarantined_sectors": sum(
                o.quarantined_sectors for o in outcomes
            ),
        }

    report = volume_fsck(volume, deep=True)
    if not report.ok:
        for violation in report.violations:
            failures.append(
                f"volume-fsck: {violation.kind}: {violation.detail}"
            )
    audit()

    # ------------------------------------------------------------------
    # Keep going: the recovered volume must be fully serviceable.
    # ------------------------------------------------------------------
    if run_ops(op_iter, CONTINUE_OPS) >= 0:
        failures.append("continue phase crashed with no injector armed")
    volume.idle(0.2)  # scrubber windows, per healthy shard
    final = volume_fsck(volume, deep=True)
    if not final.ok:
        for violation in final.violations:
            failures.append(
                f"final volume-fsck: {violation.kind}: {violation.detail}"
            )
    audit()

    return {
        "ok": not failures,
        "failures": failures,
        "workload": workload,
        "ops": ops,
        "shards": shards,
        "crashed_at": crashed_at if crashed else None,
        "down_shard": down_shard,
        "degraded_window": dict(degraded_stats),
        "recovery": recovery,
        "shard_stats": volume.shard_stats(),
    }


#: Multi-shard fault families: one shard crashes mid-stripe-write,
#: another limps through a fail-slow window, a third degrades its media
#: -- each fault stays inside its domain.  ``@depth4`` runs every shard
#: on a depth-4 SATF queue (the CI quick-set plan).
VOLUME_FAMILIES: Dict[str, Dict[str, Any]] = {
    "shard-crash": dict(
        ops=140, shards=3, crash_shard=0, crash_after=40, torn=False,
    ),
    "shard-crash+torn": dict(
        ops=140, shards=3, crash_shard=1, crash_after=35, torn=True,
    ),
    # The slow onset sits past the health monitor's 32-sample baseline,
    # so "normal" is learned from genuinely normal latencies and the
    # fail-slow window actually trips the detector (hedged reads engage).
    "shard-crash+slow@depth4": dict(
        ops=160, shards=3, crash_shard=0, crash_after=45, torn=True,
        slow_shard=1, slow_factor=8.0, slow_after=60, slow_ops=400,
        queue_depth=4, sched="satf",
    ),
    "shard-composed": dict(
        ops=160, shards=4, crash_shard=0, crash_after=50, torn=True,
        slow_shard=1, slow_factor=6.0, slow_after=60, slow_ops=400,
        flaky_shard=2, flaky=4, flaky_rate=0.4,
    ),
}

#: The volume quick set runs a workload subset (the full cross product
#: is the weekly grid's job): sequential bait for mid-stripe tears,
#: small writes for the common path, bursty idle for scrub/compact
#: during the fault window.
VOLUME_QUICK_WORKLOADS = ("small_writes", "sequential", "bursty_idle")


def volume_matrix(
    seeds: Tuple[int, ...] = (0,),
    workloads: Optional[List[str]] = None,
    families: Optional[List[str]] = None,
) -> List[SweepPoint]:
    """The (workload x shard-fault-family x seed) grid as sweep points."""
    points: List[SweepPoint] = []
    for name in workloads or sorted(WORKLOADS):
        for family in families or sorted(VOLUME_FAMILIES):
            for seed in seeds:
                params = dict(VOLUME_FAMILIES[family], workload=name)
                points.append(SweepPoint(
                    fn_name="repro.harness.torture:volume_torture_point",
                    params=params,
                    seed=seed,
                ))
    return points


def volume_quick_set() -> List[SweepPoint]:
    """The CI quick matrix: bounded workload subset, every family."""
    return volume_matrix(
        seeds=(0,), workloads=list(VOLUME_QUICK_WORKLOADS)
    )


def volume_long_set() -> List[SweepPoint]:
    """The weekly matrix: every workload, more seeds."""
    return volume_matrix(seeds=tuple(range(4)))


# ======================================================================
# The matrix
# ======================================================================

#: Fault families composed over every workload.  ``crash+torn`` is the
#: paper's power-loss story; ``flaky`` exercises retry + scrub without a
#: crash; ``composed`` stacks everything at once.
FAMILIES: Dict[str, Dict[str, Any]] = {
    "crash": dict(ops=120, crash_after=45, torn=False),
    "crash+torn": dict(ops=120, crash_after=35, torn=True),
    "flaky": dict(ops=100, flaky=6, flaky_rate=0.5),
    "composed": dict(ops=120, crash_after=50, torn=True,
                     flaky=4, flaky_rate=0.4, read_error_rate=0.002),
    # The batched-movement smoke: depth-4 satf queue, so multi-block
    # writes go down as single run requests and the crash can land
    # between a run's media writes and its map commit; recovery must
    # still hand back old-or-new for every block.
    "crash+torn@depth4": dict(ops=120, crash_after=35, torn=True,
                              queue_depth=4, sched="satf"),
    # The two-tier commit point: power loss lands at the N-th NVM log
    # append, squarely between NVM commit and destage.  A 96 KiB log
    # (~23 single-block records) forces pressure destages mid-run, so
    # the crash finds a *mixed* state -- some acked writes destaged,
    # some live only as NVM records -- and recovery must replay exactly
    # the surviving valid prefix.
    "nvm-crash": dict(ops=120, nvm=True, nvm_crash_after=40,
                      nvm_cap_kb=96),
    # Same, with the fatal append torn (CRC catches the half-persisted
    # record) over a depth-4 satf queue, so destage runs ride the
    # batched data-movement path.
    "nvm-crash+torn@depth4": dict(ops=120, nvm=True, nvm_crash_after=40,
                                  nvm_torn=True, nvm_cap_kb=96,
                                  queue_depth=4, sched="satf"),
}


def matrix(
    seeds: Tuple[int, ...] = (0,),
    workloads: Optional[List[str]] = None,
    families: Optional[List[str]] = None,
) -> List[SweepPoint]:
    """The (workload x fault-family x seed) grid as sweep points."""
    points: List[SweepPoint] = []
    for name in workloads or sorted(WORKLOADS):
        for family in families or sorted(FAMILIES):
            for seed in seeds:
                params = dict(FAMILIES[family], workload=name)
                points.append(SweepPoint(
                    fn_name="repro.harness.torture:torture_point",
                    params=params,
                    seed=seed,
                ))
    return points


def quick_set(families: Optional[List[str]] = None) -> List[SweepPoint]:
    """The CI quick matrix: every workload x every family, one seed."""
    return matrix(seeds=(0,), families=families)


def long_set(families: Optional[List[str]] = None) -> List[SweepPoint]:
    """The weekly matrix: more seeds over the same grid."""
    return matrix(seeds=tuple(range(8)), families=families)


def run_matrix(points: List[SweepPoint],
               jobs: Optional[int] = None) -> List[Dict[str, Any]]:
    """Execute the grid through the sweep engine (process-wide jobs and
    cache defaults apply, so ``--jobs``/``--cache`` just work); a
    failing point's verdict is annotated with its (params, seed) for
    the minimizer."""
    verdicts = []
    for result in run_sweep(points, jobs=jobs):
        verdict = dict(result.value)
        verdict["params"] = dict(result.point.params)
        verdict["seed"] = result.point.seed
        verdicts.append(verdict)
    return verdicts


# ======================================================================
# Minimization + repro artifacts
# ======================================================================

def minimize(params: Dict[str, Any], seed: int,
             runs_budget: int = 40,
             fn: Callable[..., Dict[str, Any]] = torture_point,
             ) -> Dict[str, Any]:
    """Shrink a failing fault plan to the smallest one that still fails.

    Greedy halving on ``ops`` first (fewer ops = less log to read in the
    repro), then on ``crash_after``; failure need not be monotone in
    either, so each halving step is *verified* by re-running the point
    and abandoned when the smaller plan passes.  ``fn`` selects the
    point function (:func:`torture_point` or
    :func:`volume_torture_point`); the same shrink keys apply to both.
    """
    runs = 0

    def fails(candidate: Dict[str, Any]) -> bool:
        nonlocal runs
        runs += 1
        return not fn(seed=seed, **candidate)["ok"]

    if not fails(params):
        raise ValueError("minimize() needs a failing plan to start from")
    best = dict(params)
    for key, floor in (("ops", 1), ("crash_after", 1)):
        value = best.get(key)
        while value is not None and value > floor and runs < runs_budget:
            candidate = dict(best, **{key: max(floor, value // 2)})
            if fails(candidate):
                best = candidate
                value = best[key]
            else:
                break
    return {
        "params": best,
        "seed": seed,
        "runs": runs,
        "fn": f"{fn.__module__}:{fn.__name__}",
    }


def write_repro(verdict: Dict[str, Any], minimized: Dict[str, Any],
                directory: str = "torture-repro") -> str:
    """Drop a self-contained reproduction recipe for one failure."""
    os.makedirs(directory, exist_ok=True)
    params, seed = minimized["params"], minimized["seed"]
    fn_ref = minimized.get(
        "fn", "repro.harness.torture:torture_point"
    )
    fn_name = fn_ref.rsplit(":", 1)[-1]
    call = ", ".join(
        [f"{k}={v!r}" for k, v in sorted(params.items())] + [f"seed={seed}"]
    )
    artifact = {
        "fn": fn_ref,
        "params": params,
        "seed": seed,
        "failures": verdict["failures"],
        "original_params": verdict["params"],
        "reproduce": (
            "PYTHONPATH=src python -c \"from repro.harness.torture import "
            f"{fn_name}; import json; "
            f"print(json.dumps({fn_name}({call}), indent=2))\""
        ),
    }
    name = "-".join(
        str(params.get(k, "")) for k in ("workload", "ops", "crash_after")
    )
    if "shards" in params:
        name = f"volume-{name}"
    path = os.path.join(directory, f"torture-{name}-seed{seed}.json")
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(artifact, sink, indent=2, sort_keys=True)
        sink.write("\n")
    return path
