"""An update-in-place FFS-style file system (the paper's "UFS").

Configured like the paper's Solaris UFS runs: 4 KB blocks, 1 KB fragments,
cylinder-group allocation, synchronous metadata updates (create and delete
each pay synchronous inode and directory writes), optional synchronous data
writes, and sequential-read prefetch.  Runs unmodified on either the
regular disk or the Virtual Log Disk, exactly as in Section 4.3.
"""

from repro.ufs.bitmap import Bitmap
from repro.ufs.layout import UFSLayout, Superblock
from repro.ufs.buffer_cache import BufferCache
from repro.ufs.alloc import UFSAllocator
from repro.ufs.ufs import UFS

__all__ = ["Bitmap", "UFSLayout", "Superblock", "BufferCache", "UFSAllocator", "UFS"]
