"""Free-space map with rotational-position-aware queries.

The eager-writing allocator (Section 4.2) needs to answer: *starting from
this angular position on this track, how many sector slots pass before an
aligned run of free sectors starts?*  :class:`FreeSpaceMap` keeps a
per-sector bitmap plus per-track and per-cylinder free counts so those
queries stay cheap even when called per write.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.disk.geometry import DiskGeometry


class FreeSpaceMap:
    """Tracks which physical sectors are free.

    All sectors start *free*; callers mark regions used as they allocate.
    """

    def __init__(self, geometry: DiskGeometry) -> None:
        self.geometry = geometry
        self._free = bytearray(b"\x01" * geometry.total_sectors)
        n_tracks = geometry.num_cylinders * geometry.tracks_per_cylinder
        per_track = geometry.sectors_per_track
        self._track_free: List[int] = [per_track] * n_tracks
        self._cyl_free: List[int] = [
            geometry.sectors_per_cylinder
        ] * geometry.num_cylinders
        self.free_sectors = geometry.total_sectors

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _track_index(self, cylinder: int, head: int) -> int:
        return cylinder * self.geometry.tracks_per_cylinder + head

    def is_free(self, sector: int) -> bool:
        self.geometry.check_sector(sector)
        return bool(self._free[sector])

    def run_is_free(self, sector: int, count: int) -> bool:
        """True when all of ``sector .. sector+count-1`` are free."""
        if count <= 0:
            raise ValueError("count must be positive")
        self.geometry.check_sector(sector)
        self.geometry.check_sector(sector + count - 1)
        return all(self._free[sector : sector + count])

    def _set(self, sector: int, count: int, free: bool) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        self.geometry.check_sector(sector)
        self.geometry.check_sector(sector + count - 1)
        per_cyl = self.geometry.sectors_per_cylinder
        per_track = self.geometry.sectors_per_track
        value = 1 if free else 0
        for s in range(sector, sector + count):
            if self._free[s] == value:
                continue
            self._free[s] = value
            delta = 1 if free else -1
            self._track_free[s // per_track] += delta
            self._cyl_free[s // per_cyl] += delta
            self.free_sectors += delta

    def mark_used(self, sector: int, count: int = 1) -> None:
        """Mark a run of sectors as occupied."""
        self._set(sector, count, free=False)

    def mark_free(self, sector: int, count: int = 1) -> None:
        """Mark a run of sectors as free (reusable)."""
        self._set(sector, count, free=True)

    def track_free_count(self, cylinder: int, head: int) -> int:
        self.geometry.check_track(cylinder, head)
        return self._track_free[self._track_index(cylinder, head)]

    def cylinder_free_count(self, cylinder: int) -> int:
        if not 0 <= cylinder < self.geometry.num_cylinders:
            raise ValueError(f"cylinder {cylinder} out of range")
        return self._cyl_free[cylinder]

    @property
    def utilization(self) -> float:
        """Fraction of sectors occupied, in [0, 1]."""
        total = self.geometry.total_sectors
        return (total - self.free_sectors) / total

    # ------------------------------------------------------------------
    # Rotational queries (the heart of eager writing)
    # ------------------------------------------------------------------

    def nearest_free_run(
        self,
        cylinder: int,
        head: int,
        start_slot: float,
        count: int,
        align: int = 1,
    ) -> Optional[Tuple[float, int]]:
        """Find the angularly nearest free aligned run on one track.

        Args:
            cylinder, head: The track to search.
            start_slot: Angular position (in sector slots, possibly
                fractional) the head will occupy when it is ready to write.
            count: Number of contiguous sectors needed.
            align: Run start must satisfy ``sector_in_track % align == 0``.

        Returns:
            ``(gap_slots, linear_sector)`` where ``gap_slots`` is the angular
            distance (in sector slots) from ``start_slot`` to the start of
            the run, or ``None`` if the track has no such run.
        """
        if count <= 0 or align <= 0:
            raise ValueError("count and align must be positive")
        geometry = self.geometry
        n = geometry.sectors_per_track
        if count > n:
            return None
        track_idx = self._track_index(cylinder, head)
        if self._track_free[track_idx] < count:
            return None
        base = geometry.track_start(cylinder, head)
        skew = geometry.skew_offset(cylinder, head)
        best: Optional[Tuple[float, int]] = None
        for sect in range(0, n - count + 1, align):
            linear = base + sect
            if not all(self._free[linear : linear + count]):
                continue
            angle = (sect + skew) % n
            gap = (angle - start_slot) % n
            if best is None or gap < best[0]:
                best = (gap, linear)
                if gap < align:
                    # Cannot do better than landing within one aligned slot.
                    break
        return best

    def nearest_free_in_cylinder(
        self,
        cylinder: int,
        current_head: int,
        start_slot: float,
        count: int,
        align: int = 1,
        head_switch_slots: float = 0.0,
    ) -> Optional[Tuple[float, int, int]]:
        """Find the best free run across all tracks of one cylinder.

        This is the two-way comparison of the paper's single-cylinder model
        (Section 2.2): the current track competes against the other tracks,
        whose candidates are penalised by the head-switch time expressed in
        sector slots.

        Returns ``(cost_slots, linear_sector, head)`` or ``None``.
        """
        best: Optional[Tuple[float, int, int]] = None
        n = self.geometry.sectors_per_track
        for head in range(self.geometry.tracks_per_cylinder):
            penalty = 0.0 if head == current_head else head_switch_slots
            found = self.nearest_free_run(cylinder, head, start_slot, count, align)
            if found is None:
                continue
            gap, linear = found
            if head != current_head and gap < penalty:
                # The head cannot settle in time for this pass; the run is
                # reachable only one full revolution later.
                gap += n
            if best is None or gap < best[0]:
                best = (gap, linear, head)
        return best

    def free_sector_iter(self, cylinder: int, head: int):
        """Yield linear sector numbers of free sectors on one track."""
        base = self.geometry.track_start(cylinder, head)
        for offset in range(self.geometry.sectors_per_track):
            if self._free[base + offset]:
                yield base + offset
