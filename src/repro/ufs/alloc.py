"""Cylinder-group allocation: inodes, blocks, and fragments.

FFS policies, simplified but recognisable:

* a new directory goes to the group with the most free inodes;
* a new file's inode goes to its parent directory's group;
* data blocks go to their inode's group, preferring the block right after
  the previous one (contiguous layout for sequential reads on the regular
  disk);
* fragment runs prefer blocks that already hold fragments.

Bitmaps live in each group's bitmap block and are written back lazily
through the buffer cache (FFS writes bitmaps asynchronously too).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.fs.api import NoSpace
from repro.sim.stats import Breakdown
from repro.ufs.bitmap import Bitmap
from repro.ufs.buffer_cache import BufferCache
from repro.ufs.layout import UFSLayout


class _Group:
    """One cylinder group's in-memory bitmaps."""

    def __init__(self, layout: UFSLayout, index: int) -> None:
        self.index = index
        self.inodes = Bitmap(layout.sb.inodes_per_group)
        frag_bits = layout.sb.blocks_per_group * layout.frags_per_block
        self.frags = Bitmap(frag_bits)


class UFSAllocator:
    """Bitmap-backed allocator over all cylinder groups."""

    def __init__(self, layout: UFSLayout, cache: BufferCache) -> None:
        self.layout = layout
        self.cache = cache
        self.groups: List[_Group] = [
            _Group(layout, g) for g in range(layout.sb.num_groups)
        ]

    # ------------------------------------------------------------------
    # mkfs / mount plumbing
    # ------------------------------------------------------------------

    def initialise(self) -> None:
        """Fresh bitmaps: metadata blocks pre-marked used."""
        for group in self.groups:
            for block_off in range(self.layout.meta_blocks_per_group):
                base = block_off * self.layout.frags_per_block
                for k in range(self.layout.frags_per_block):
                    group.frags.set(base + k)
        # Inode 0 of group 0 is reserved (invalid inum).
        self.groups[0].inodes.set(0)

    def load(self, breakdown: Breakdown) -> None:
        """Read all bitmap blocks from the device (mount)."""
        offsets = self.layout.bitmap_layout()
        for group in self.groups:
            raw, cost = self.cache.read(self.layout.bitmap_block(group.index))
            breakdown.add(cost)
            group.inodes = Bitmap(
                self.layout.sb.inodes_per_group, raw[offsets[0] : offsets[1]]
            )
            frag_bits = (
                self.layout.sb.blocks_per_group * self.layout.frags_per_block
            )
            group.frags = Bitmap(frag_bits, raw[offsets[1] : offsets[2]])

    def store_group(self, group_index: int, sync: bool = False) -> Breakdown:
        """Write one group's bitmap block (dirty in cache unless sync)."""
        group = self.groups[group_index]
        offsets = self.layout.bitmap_layout()
        raw = bytearray(self.layout.block_size)
        raw[offsets[0] : offsets[0] + len(group.inodes.pack())] = (
            group.inodes.pack()
        )
        raw[offsets[1] : offsets[1] + len(group.frags.pack())] = (
            group.frags.pack()
        )
        return self.cache.write(
            self.layout.bitmap_block(group_index), bytes(raw), sync
        )

    def store_all(self) -> Breakdown:
        breakdown = Breakdown()
        for group in self.groups:
            breakdown.add(self.store_group(group.index))
        return breakdown

    # ------------------------------------------------------------------
    # Inodes
    # ------------------------------------------------------------------

    def alloc_inode(self, parent_inum: int, is_dir: bool) -> int:
        """Pick and mark an inode; returns the inum."""
        ipg = self.layout.sb.inodes_per_group
        if is_dir:
            order = sorted(
                range(len(self.groups)),
                key=lambda g: -self.groups[g].inodes.free_count,
            )
        else:
            home = self.layout.group_of_inum(parent_inum)
            order = [home] + [
                g for g in range(len(self.groups)) if g != home
            ]
        for g in order:
            index = self.groups[g].inodes.find_free()
            if index is not None:
                self.groups[g].inodes.set(index)
                return g * ipg + index
        raise NoSpace("out of inodes")

    def free_inode(self, inum: int) -> None:
        group = self.layout.group_of_inum(inum)
        index = inum % self.layout.sb.inodes_per_group
        self.groups[group].inodes.clear(index)

    # ------------------------------------------------------------------
    # Blocks and fragments
    # ------------------------------------------------------------------

    def alloc_block(self, goal_lba: int) -> int:
        """Allocate one full block, preferring ``goal_lba`` onward."""
        fpb = self.layout.frags_per_block
        if goal_lba >= 1:
            try:
                goal_group = self.layout.group_of_block(goal_lba)
            except ValueError:
                goal_group = 0
        else:
            goal_group = 0
        order = [goal_group] + [
            g for g in range(len(self.groups)) if g != goal_group
        ]
        for g in order:
            group = self.groups[g]
            goal_bit = 0
            if g == goal_group and goal_lba >= 1:
                start = self.layout.group_start(g)
                goal_bit = max(0, (goal_lba - start)) * fpb
            frag = group.frags.find_free_run(fpb, align=fpb, goal=goal_bit)
            if frag is not None:
                for k in range(fpb):
                    group.frags.set(frag + k)
                return self.layout.group_start(g) + frag // fpb
        raise NoSpace("out of data blocks")

    def free_block(self, lba: int) -> None:
        group_index = self.layout.group_of_block(lba)
        group = self.groups[group_index]
        fpb = self.layout.frags_per_block
        base = (lba - self.layout.group_start(group_index)) * fpb
        for k in range(fpb):
            group.frags.clear(base + k)

    def alloc_frags(self, count: int, goal_lba: int) -> int:
        """Allocate ``count`` contiguous fragments inside one block;
        returns the absolute fragment number."""
        fpb = self.layout.frags_per_block
        goal_group = 0
        if goal_lba >= 1:
            try:
                goal_group = self.layout.group_of_block(goal_lba)
            except ValueError:
                goal_group = 0
        order = [goal_group] + [
            g for g in range(len(self.groups)) if g != goal_group
        ]
        for g in order:
            group = self.groups[g]
            frag = group.frags.find_frag_run(count, fpb)
            if frag is not None:
                for k in range(count):
                    group.frags.set(frag + k)
                return self.layout.group_start(g) * fpb + frag
        raise NoSpace("out of fragments")

    def free_frags(self, frag: int, count: int) -> None:
        fpb = self.layout.frags_per_block
        lba = frag // fpb
        group_index = self.layout.group_of_block(lba)
        group = self.groups[group_index]
        base = frag - self.layout.group_start(group_index) * fpb
        for k in range(count):
            group.frags.clear(base + k)

    # ------------------------------------------------------------------

    def free_space(self) -> Tuple[int, int]:
        """(free fragments, free inodes) across all groups."""
        frags = sum(g.frags.free_count for g in self.groups)
        inodes = sum(g.inodes.free_count for g in self.groups)
        return frags, inodes

    def touched_group_of_block(self, lba: int) -> int:
        return self.layout.group_of_block(lba)
