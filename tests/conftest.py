"""Shared fixtures for the test suite.

Most tests run against the Seagate ST19101 model with the paper's simulated
11-cylinder slice (fast), switching to the HP97560 where a test targets
old-disk behaviour explicitly.
"""

import pytest

from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import HP97560, ST19101
from repro.hosts.specs import SPARCSTATION_10, ULTRASPARC_170
from repro.lfs.lfs import LFS
from repro.sim.clock import SimClock
from repro.ufs.ufs import UFS
from repro.vlog.vld import VirtualLogDisk


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def seagate(clock):
    return Disk(ST19101, clock)


@pytest.fixture
def hp(clock):
    return Disk(HP97560, clock)


@pytest.fixture
def regular_device(seagate):
    return RegularDisk(seagate)


@pytest.fixture
def vld(seagate):
    return VirtualLogDisk(seagate)


@pytest.fixture
def host():
    return SPARCSTATION_10


@pytest.fixture
def fast_host():
    return ULTRASPARC_170


@pytest.fixture
def ufs(regular_device, host):
    return UFS(regular_device, host)


@pytest.fixture
def ufs_vld(vld, host):
    return UFS(vld, host)


@pytest.fixture
def lfs(regular_device, host):
    return LFS(regular_device, host)


@pytest.fixture
def lfs_nvram(regular_device, host):
    return LFS(regular_device, host, nvram=True)
