"""The bad-sector quarantine table and its persistence format.

Quarantined sectors are permanently retired: the free map refuses to hand
them out again (see :meth:`FreeSpaceMap.quarantine`) and the scrubber has
already migrated any live data off them.  The table itself is persisted
*through the virtual log*: its contents are split into chunks whose ids
live in ``[QUARANTINE_CHUNK_BASE, COMMIT_CHUNK_BASE)`` and appended like
any map chunk, so it inherits the log's crash atomicity and youngest-wins
recovery without a single reserved block.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.vlog.entries import COMMIT_CHUNK_BASE, QUARANTINE_CHUNK_BASE


class QuarantineTable:
    """The set of retired physical sectors, chunked for log persistence.

    Args:
        chunk_capacity: Sector numbers per persisted chunk (the map-record
            entry capacity, since quarantine chunks ride map records).
    """

    def __init__(self, chunk_capacity: int) -> None:
        if chunk_capacity <= 0:
            raise ValueError("chunk_capacity must be positive")
        self.chunk_capacity = chunk_capacity
        self.sectors: Set[int] = set()
        #: True when the on-disk copy is stale (something was added).
        self.dirty = False

    def __len__(self) -> int:
        return len(self.sectors)

    def __contains__(self, sector: int) -> bool:
        return sector in self.sectors

    def add(self, sector: int) -> bool:
        """Quarantine one sector; returns True when it is newly added."""
        if sector < 0:
            raise ValueError("sector numbers are non-negative")
        if sector in self.sectors:
            return False
        self.sectors.add(sector)
        self.dirty = True
        return True

    # ------------------------------------------------------------------
    # Log persistence
    # ------------------------------------------------------------------

    def chunk_ids(self) -> List[int]:
        """Ids of the log chunks the current table occupies."""
        n_chunks = -(-len(self.sectors) // self.chunk_capacity)
        return [QUARANTINE_CHUNK_BASE + i for i in range(n_chunks)]

    def chunk_payload(self, chunk_id: int) -> List[int]:
        """Entry list for one quarantine chunk (ascending sector numbers;
        the split is deterministic, so relocation rewrites are stable)."""
        if not QUARANTINE_CHUNK_BASE <= chunk_id < COMMIT_CHUNK_BASE:
            raise ValueError(f"chunk {chunk_id} is not a quarantine chunk")
        idx = chunk_id - QUARANTINE_CHUNK_BASE
        ordered = sorted(self.sectors)
        lo = idx * self.chunk_capacity
        if lo >= len(ordered) and idx > 0:
            raise ValueError(f"quarantine chunk {idx} is out of range")
        return ordered[lo : lo + self.chunk_capacity]

    def load(self, chunks: Dict[int, Iterable[int]]) -> None:
        """Install recovered chunk payloads (replacing the table)."""
        sectors: Set[int] = set()
        for chunk_id, payload in chunks.items():
            if not QUARANTINE_CHUNK_BASE <= chunk_id < COMMIT_CHUNK_BASE:
                raise ValueError(
                    f"chunk {chunk_id} is not a quarantine chunk"
                )
            sectors.update(payload)
        self.sectors = sectors
        self.dirty = False
