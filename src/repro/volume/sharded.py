"""A striped volume over N independent Virtual Log Disk stacks.

The paper's VLD is a single fault domain; this layer is the LogBase
shape -- log-per-server with a partitioned map -- translated to block
devices: the logical block space is striped across N shard devices, each
a complete VLD stack (its own virtual log, indirection map, compactor,
scrubber, quarantine, and request queue), and **shards fail
independently**.  The volume's contract is partial failure:

* a crash, injected media fault, or fail-slow window on one shard never
  touches its siblings;
* I/O to healthy shards keeps flowing while a failed shard is down;
  requests that *need* the down shard pay a deterministic, bounded
  retry/backoff budget (reusing :class:`RetryPolicy` on simulated time)
  and then fail with :class:`ShardUnavailable` -- never a hang;
* reads against a shard whose :class:`ShardHealthMonitor` has tripped
  are *hedged*: the fail-slow surplus a single operation may charge is
  capped at the monitor's hedge delay, modelling a duplicate request
  racing the slow one;
* recovery is per shard -- :meth:`ShardedVolume.recover_shard` runs one
  shard's power-down/scan recovery while the others serve traffic.

**Identity contract:** a single-shard volume is a transparent
pass-through -- every operation delegates verbatim to the one shard, no
extra latency, no capacity change -- so all existing single-device
figures are provably unaffected (CI pins this byte-identical).

Striping: with stripe width ``S`` blocks and ``N`` shards, volume block
``v`` lives in stripe ``t = v // S`` at offset ``w = v % S``; stripe
``t`` maps to shard ``t % N`` at shard block ``(t // N) * S + w``.  Any
contiguous volume range therefore touches at most one contiguous range
per shard, so a volume operation fans out to at most N shard
operations.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.blockdev.interface import BlockDevice
from repro.blockdev.interpose import (
    DeviceCrashed,
    DeviceFault,
    FaultDevice,
    find_layer,
)
from repro.sim.stats import Breakdown
from repro.vlog.resilience.retry import RetryPolicy
from repro.volume.health import ShardHealthMonitor, median_baseline


class ShardUnavailable(DeviceFault):
    """A request needed a down shard and its retry budget ran out.

    Raised instead of letting the caller hang on a shard that will not
    answer until :meth:`ShardedVolume.recover_shard` runs; ``shard``
    names the fault domain and ``__cause__`` carries the fault that took
    the shard down (when the volume observed it).
    """


class ShardState(enum.Enum):
    HEALTHY = "healthy"
    DOWN = "down"


class ShardedVolume(BlockDevice):
    """A block device striping its space across independent VLD shards.

    Args:
        shards: The shard devices (plain VLDs or interposer-wrapped
            stacks).  All must share one block size, and -- for the
            simulated timeline to make sense -- one :class:`SimClock`.
        stripe_blocks: Stripe width in blocks.
        retry_policy: Backoff schedule for requests that hit a down
            shard (each such request pays the full budget, then raises
            :class:`ShardUnavailable`).
        hedge_reads: Cap the fail-slow surplus of reads against a shard
            whose health monitor has tripped (no-op for shards without a
            :class:`FaultDevice` layer -- there is nothing to cap).
        monitor_factory: Builds the per-shard
            :class:`ShardHealthMonitor` (default configuration when
            omitted).
    """

    def __init__(
        self,
        shards: Sequence[BlockDevice],
        stripe_blocks: int = 8,
        retry_policy: Optional[RetryPolicy] = None,
        hedge_reads: bool = True,
        monitor_factory=ShardHealthMonitor,
    ) -> None:
        shards = list(shards)
        if not shards:
            raise ValueError("a volume needs at least one shard")
        if stripe_blocks <= 0:
            raise ValueError("stripe width must be positive")
        sizes = {shard.block_size for shard in shards}
        if len(sizes) != 1:
            raise ValueError("shards must share one block size")
        self.shards: List[BlockDevice] = shards
        self.num_shards = len(shards)
        self.stripe_blocks = stripe_blocks
        self.block_size = shards[0].block_size
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.hedge_reads = hedge_reads
        self._single = self.num_shards == 1
        if self._single:
            # Identity contract: one shard, zero translation.
            self.num_blocks = shards[0].num_blocks
            self.shard_rows = 0
        else:
            # Every shard contributes the same whole number of stripes,
            # so the round-robin layout is a clean bijection.
            self.shard_rows = min(s.num_blocks for s in shards) // stripe_blocks
            self.num_blocks = self.shard_rows * stripe_blocks * self.num_shards
            if self.num_blocks <= 0:
                raise ValueError("shards too small for one stripe each")
        self.states: List[ShardState] = (
            [ShardState.HEALTHY] * self.num_shards
        )
        self.monitors: List[ShardHealthMonitor] = [
            monitor_factory() for _ in range(self.num_shards)
        ]
        self._fault_layers: List[Optional[FaultDevice]] = [
            find_layer(shard, FaultDevice) for shard in shards
        ]
        self.shard_calls = [0] * self.num_shards
        self.shard_faults = [0] * self.num_shards
        self.unavailable_errors = [0] * self.num_shards
        self.hedged_reads = [0] * self.num_shards
        self.backoff_seconds = [0.0] * self.num_shards

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    @property
    def shard_capacity(self) -> int:
        """Blocks of each shard the volume actually uses."""
        if self._single:
            return self.num_blocks
        return self.shard_rows * self.stripe_blocks

    def shard_of(self, lba: int) -> Tuple[int, int]:
        """(shard index, shard block) for one volume block."""
        if self._single:
            return 0, lba
        stripe, within = divmod(lba, self.stripe_blocks)
        row, shard = divmod(stripe, self.num_shards)
        # divmod gives (stripe // N, stripe % N); shard is the remainder.
        return shard, row * self.stripe_blocks + within

    def volume_lba(self, shard: int, shard_lba: int) -> int:
        """Inverse of :meth:`shard_of` (the fsck round-trip check)."""
        if self._single:
            return shard_lba
        row, within = divmod(shard_lba, self.stripe_blocks)
        stripe = row * self.num_shards + shard
        return stripe * self.stripe_blocks + within

    def _plan(self, lba: int, count: int) -> List[Tuple[int, int, int, List[int]]]:
        """Split a volume range into per-shard runs.

        Returns ``(shard, shard_lba, count, positions)`` tuples in shard
        order; ``positions`` are the block offsets inside the volume
        range that scatter/gather against the shard run (in order).  The
        round-robin layout guarantees each shard's touched blocks form
        one contiguous run; the assert is the proof's tripwire.
        """
        per_shard: Dict[int, List[Tuple[int, int]]] = {}
        for pos in range(count):
            shard, s_lba = self.shard_of(lba + pos)
            per_shard.setdefault(shard, []).append((s_lba, pos))
        plan = []
        for shard in sorted(per_shard):
            pairs = per_shard[shard]
            start = pairs[0][0]
            assert all(
                s_lba == start + i for i, (s_lba, _) in enumerate(pairs)
            ), "striping produced a non-contiguous shard run"
            plan.append(
                (shard, start, len(pairs), [pos for _, pos in pairs])
            )
        return plan

    # ------------------------------------------------------------------
    # Degraded-mode shard dispatch
    # ------------------------------------------------------------------

    def _clock(self):
        return getattr(getattr(self.shards[0], "disk", None), "clock", None)

    def _pay_backoff(self, index: int) -> float:
        """Advance simulated time by the full (bounded) retry budget a
        request spends probing a down shard before giving up."""
        clock = self._clock()
        total = 0.0
        for attempt in range(1, self.retry_policy.max_attempts):
            total += self.retry_policy.backoff(attempt)
        if clock is not None and total > 0.0:
            clock.advance(total)
        self.backoff_seconds[index] += total
        return total

    def _unavailable(
        self, index: int, op: str, cause: Optional[DeviceFault] = None
    ) -> ShardUnavailable:
        budget = self._pay_backoff(index)
        self.unavailable_errors[index] += 1
        error = ShardUnavailable(
            f"shard {index} unavailable (op {op!r}; gave up after "
            f"{self.retry_policy.max_attempts - 1} retries, "
            f"{budget * 1e3:.3f}ms of backoff)",
            op=op,
            shard=index,
        )
        if cause is not None:
            error.__cause__ = cause
        return error

    def _shard_call(self, index: int, op: str, *args):
        """Dispatch one operation to one shard, degraded-mode aware.

        A DOWN shard is never called (its volatile state is gone; an
        answer would be a lie) -- the request pays the retry budget and
        raises.  A crash observed *here* marks the shard DOWN so its
        siblings keep serving; other device faults are stamped with the
        shard index and propagate to the caller's own retry machinery.
        """
        if self.states[index] is ShardState.DOWN:
            raise self._unavailable(index, op)
        shard = self.shards[index]
        self.shard_calls[index] += 1
        try:
            result = getattr(shard, op)(*args)
        except DeviceCrashed as fault:
            if fault.shard is None:
                fault.shard = index
            self.states[index] = ShardState.DOWN
            self.shard_faults[index] += 1
            raise self._unavailable(index, op, cause=fault) from fault
        except DeviceFault as fault:
            if fault.shard is None:
                fault.shard = index
            self.shard_faults[index] += 1
            raise
        breakdown = result[1] if isinstance(result, tuple) else result
        if isinstance(breakdown, Breakdown):
            self.monitors[index].note(breakdown.total)
            self._calibrate_monitor(index)
        return result

    def _calibrate_monitor(self, index: int) -> None:
        """Once a shard's baseline freezes, cross-check it against the
        median sibling baseline: a shard that was *already* fail-slow
        while learning froze an inflated baseline (slow looked normal,
        so the trip comparison could never fire); calibration adopts the
        siblings' normal and trips it immediately.  One-shot per
        baseline, no-op until at least two siblings have frozen theirs."""
        monitor = self.monitors[index]
        if monitor.baseline_p99 is None or monitor.calibrated:
            return
        reference = median_baseline(
            m for i, m in enumerate(self.monitors) if i != index
        )
        if reference is None:
            return
        monitor.calibrate(reference)

    def _shard_read(self, index: int, op: str, *args):
        """A read, hedged when the shard's fail-slow monitor is tripped:
        the fault layer's per-op surplus is capped at the monitor's
        hedge delay for the duration of the call (the duplicate request
        racing the slow shard, in one deterministic clock advance)."""
        monitor = self.monitors[index]
        layer = self._fault_layers[index]
        if (
            self.hedge_reads
            and monitor.tripped
            and layer is not None
        ):
            delay = monitor.hedge_delay()
            if delay is not None:
                self.hedged_reads[index] += 1
                previous = layer.hedge_cap
                layer.hedge_cap = delay
                try:
                    return self._shard_call(index, op, *args)
                finally:
                    layer.hedge_cap = previous
        return self._shard_call(index, op, *args)

    # ------------------------------------------------------------------
    # The BlockDevice interface
    # ------------------------------------------------------------------

    def read_block(self, lba: int) -> Tuple[bytes, Breakdown]:
        if self._single:
            return self.shards[0].read_block(lba)
        self.check_lba(lba)
        shard, s_lba = self.shard_of(lba)
        return self._shard_read(shard, "read_block", s_lba)

    def read_blocks(self, lba: int, count: int) -> Tuple[bytes, Breakdown]:
        if self._single:
            return self.shards[0].read_blocks(lba, count)
        self.check_lba(lba, count)
        pieces: List[Optional[bytes]] = [None] * count
        breakdown = Breakdown()
        for shard, s_lba, s_count, positions in self._plan(lba, count):
            data, cost = self._shard_read(
                shard, "read_blocks", s_lba, s_count
            )
            breakdown.add(cost)
            for i, pos in enumerate(positions):
                pieces[pos] = data[
                    i * self.block_size : (i + 1) * self.block_size
                ]
        assert all(piece is not None for piece in pieces)
        return b"".join(pieces), breakdown  # type: ignore[arg-type]

    def write_block(self, lba: int, data: Optional[bytes] = None) -> Breakdown:
        if self._single:
            return self.shards[0].write_block(lba, data)
        self.check_lba(lba)
        data = self.check_data(data, 1)
        shard, s_lba = self.shard_of(lba)
        return self._shard_call(shard, "write_block", s_lba, data)

    def write_blocks(
        self, lba: int, count: int, data: Optional[bytes] = None
    ) -> Breakdown:
        if self._single:
            return self.shards[0].write_blocks(lba, count, data)
        self.check_lba(lba, count)
        data = self.check_data(data, count)
        breakdown = Breakdown()
        for shard, s_lba, s_count, positions in self._plan(lba, count):
            piece = b"".join(
                data[pos * self.block_size : (pos + 1) * self.block_size]
                for pos in positions
            )
            breakdown.add(
                self._shard_call(
                    shard, "write_blocks", s_lba, s_count, piece
                )
            )
        return breakdown

    def write_partial(self, lba: int, offset: int, data: bytes) -> Breakdown:
        if self._single:
            return self.shards[0].write_partial(lba, offset, data)
        self.check_lba(lba)
        shard, s_lba = self.shard_of(lba)
        return self._shard_call(shard, "write_partial", s_lba, offset, data)

    def trim(self, lba: int, count: int = 1) -> Breakdown:
        if self._single:
            return self.shards[0].trim(lba, count)
        self.check_lba(lba, count)
        breakdown = Breakdown()
        for shard, s_lba, s_count, _ in self._plan(lba, count):
            breakdown.add(self._shard_call(shard, "trim", s_lba, s_count))
        return breakdown

    def idle(self, seconds: float) -> None:
        """Grant idle time to every healthy shard, in shard order.

        Real shards would scrub/compact concurrently; the shared-clock
        model serializes the grants (conservative: total elapsed time is
        an upper bound).  DOWN shards are skipped -- a crashed drive
        does no background work -- and a shard that crashes *during* its
        grant is marked DOWN without disturbing its siblings' turns.
        """
        if self._single:
            self.shards[0].idle(seconds)
            return
        for index, shard in enumerate(self.shards):
            if self.states[index] is ShardState.DOWN:
                continue
            try:
                shard.idle(seconds)
            except DeviceCrashed as fault:
                if fault.shard is None:
                    fault.shard = index
                self.states[index] = ShardState.DOWN
                self.shard_faults[index] += 1

    # ------------------------------------------------------------------
    # Fault domains: crash / recovery, per shard and volume-wide
    # ------------------------------------------------------------------

    def crash_shard(self, index: int) -> None:
        """Abrupt single-shard failure: its volatile state is gone, its
        siblings never notice."""
        self.shards[index].crash()
        self.states[index] = ShardState.DOWN

    def recover_shard(self, index: int, timed: bool = True):
        """Bring one shard back: discard its volatile state, run the
        standard power-down/scan recovery, and re-arm its health
        monitor.  Siblings serve traffic throughout (nothing here
        touches them).  Returns the shard's
        :class:`~repro.vlog.recovery.RecoveryOutcome`."""
        shard = self.shards[index]
        layer = self._fault_layers[index]
        if layer is not None:
            layer.crashed = False
        shard.crash()
        outcome = shard.recover(timed)
        self.monitors[index].reset()
        self.states[index] = ShardState.HEALTHY
        return outcome

    def crash(self) -> None:
        """Whole-volume power loss: every shard crashes."""
        for index in range(self.num_shards):
            self.crash_shard(index)

    def recover(self, timed: bool = True):
        """Recover every shard (volume-wide restart); returns the
        per-shard outcomes in shard order."""
        if self._single:
            # Pass-through: identical call sequence to a plain VLD.
            outcome = self.shards[0].recover(timed)
            self.states[0] = ShardState.HEALTHY
            return outcome
        return [
            self.recover_shard(index, timed)
            for index in range(self.num_shards)
        ]

    def power_down(self, timed: bool = True) -> Breakdown:
        """Orderly shutdown of every healthy shard (a DOWN shard cannot
        persist its tail -- it recovers by scan, as a real drive would)."""
        if self._single:
            return self.shards[0].power_down(timed)
        breakdown = Breakdown()
        for index, shard in enumerate(self.shards):
            if self.states[index] is ShardState.DOWN:
                continue
            breakdown.add(shard.power_down(timed))
        return breakdown

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while any shard is DOWN."""
        return any(state is ShardState.DOWN for state in self.states)

    def shard_stats(self) -> List[Dict[str, object]]:
        """Per-shard accounting for reports and torture artifacts."""
        return [
            {
                "shard": index,
                "state": self.states[index].value,
                "calls": self.shard_calls[index],
                "faults": self.shard_faults[index],
                "unavailable": self.unavailable_errors[index],
                "hedged_reads": self.hedged_reads[index],
                "backoff_seconds": self.backoff_seconds[index],
                "health": self.monitors[index].stats(),
            }
            for index in range(self.num_shards)
        ]

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        states = "".join(
            "H" if state is ShardState.HEALTHY else "D"
            for state in self.states
        )
        return (
            f"ShardedVolume(shards={self.num_shards}, "
            f"stripe={self.stripe_blocks}, states={states})"
        )
