"""The transparent NVM write-ahead tier.

:class:`NVWal` absorbs synchronous writes into a byte-addressable
stable-memory log in front of any block device (VLD, LFS segment store,
UFS on a regular disk), acknowledges at NVM persistence speed, and
destages to the backing store during idle time.  See
:mod:`repro.nvm.wal` for the log format and the two-tier commit point.
"""

from repro.nvm.wal import NVRecoveryOutcome, NVWal, NVWalInjector

__all__ = ["NVWal", "NVWalInjector", "NVRecoveryOutcome"]
