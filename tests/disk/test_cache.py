from repro.disk.cache import ReadAheadPolicy, TrackBuffer


TRACK = ((0, 0), 0, 256)  # key, lo, hi


def test_disabled_policy_never_hits():
    buf = TrackBuffer(ReadAheadPolicy.DISABLED)
    assert not buf.note_read(*TRACK, 10, 4)
    assert not buf.note_read(*TRACK, 10, 4)
    assert buf.hit_rate == 0.0


def test_dartmouth_readahead_to_end_of_track():
    buf = TrackBuffer(ReadAheadPolicy.DARTMOUTH)
    assert not buf.note_read(*TRACK, 10, 4)      # miss populates [10, 256)
    assert buf.note_read(*TRACK, 100, 8)         # within read-ahead: hit
    assert buf.hits == 1


def test_dartmouth_discards_lower_addresses():
    """Section 4.2: the stock policy discards data below the current
    request -- fine for monotonic physical addresses, bad under a VLD."""
    buf = TrackBuffer(ReadAheadPolicy.DARTMOUTH)
    buf.note_read(*TRACK, 10, 4)
    assert buf.note_read(*TRACK, 100, 8)         # hit; discards [10, 100)
    assert not buf.note_read(*TRACK, 20, 4)      # lower address: miss now


def test_full_track_policy_retains_lower_addresses():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    buf.note_read(*TRACK, 100, 8)                # miss caches whole track
    assert buf.note_read(*TRACK, 20, 4)          # lower address still hit
    assert buf.note_read(*TRACK, 200, 8)


def test_miss_on_other_track_replaces_segment():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    buf.note_read(*TRACK, 0, 4)
    other = ((0, 1), 256, 512)
    assert not buf.note_read(*other, 300, 4)
    assert buf.note_read(*other, 400, 4)
    assert not buf.note_read(*TRACK, 0, 4)


def test_write_invalidates_overlap():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    buf.note_read(*TRACK, 0, 4)
    buf.note_write(128, 8)
    assert not buf.note_read(*TRACK, 10, 4)


def test_write_outside_does_not_invalidate():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    buf.note_read(*TRACK, 0, 4)
    buf.note_write(1000, 8)
    assert buf.note_read(*TRACK, 10, 4)


def test_invalidate_clears():
    buf = TrackBuffer(ReadAheadPolicy.FULL_TRACK)
    buf.note_read(*TRACK, 0, 4)
    buf.invalidate()
    assert not buf.contains(0, 4)


def test_hit_rate():
    buf = TrackBuffer(ReadAheadPolicy.DARTMOUTH)
    buf.note_read(*TRACK, 0, 4)
    buf.note_read(*TRACK, 4, 4)
    buf.note_read(*TRACK, 8, 4)
    assert buf.hit_rate == 2 / 3
