"""The Virtual Log Disk behind the standard block-device interface."""

import random

import pytest

from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.vlog.vld import VirtualLogDisk


@pytest.fixture
def disk():
    return Disk(ST19101)


@pytest.fixture
def vld(disk):
    return VirtualLogDisk(disk)


class TestBlockDeviceSemantics:
    def test_logical_capacity_below_physical(self, vld):
        assert vld.num_blocks < vld.physical_blocks

    def test_unwritten_blocks_read_zero(self, vld):
        data, _ = vld.read_block(42)
        assert data == bytes(4096)

    def test_write_read_roundtrip(self, vld):
        vld.write_block(7, b"\x77" * 4096)
        data, _ = vld.read_block(7)
        assert data == b"\x77" * 4096

    def test_multi_block_roundtrip(self, vld):
        payload = bytes(range(256)) * 64  # 4 blocks
        vld.write_blocks(100, 4, payload)
        data, _ = vld.read_blocks(100, 4)
        assert data == payload

    def test_overwrite_returns_new_data(self, vld):
        vld.write_block(3, b"a" * 4096)
        vld.write_block(3, b"b" * 4096)
        data, _ = vld.read_block(3)
        assert data == b"b" * 4096

    def test_partial_write_merges(self, vld):
        vld.write_block(9, b"\x11" * 4096)
        vld.write_partial(9, 1024, b"\x22" * 1024)
        data, _ = vld.read_block(9)
        assert data[:1024] == b"\x11" * 1024
        assert data[1024:2048] == b"\x22" * 1024

    def test_partial_write_to_unmapped_block(self, vld):
        vld.write_partial(9, 512, b"\x33" * 512)
        data, _ = vld.read_block(9)
        assert data[:512] == bytes(512)
        assert data[512:1024] == b"\x33" * 512

    def test_lba_bounds(self, vld):
        with pytest.raises(ValueError):
            vld.read_block(vld.num_blocks)


class TestEagerWritingBehaviour:
    def test_overwrite_relocates_physically(self, vld):
        vld.write_block(5, b"a" * 4096)
        first = vld.imap.get(5)
        vld.write_block(5, b"b" * 4096)
        second = vld.imap.get(5)
        assert first != second

    def test_overwrite_frees_old_location(self, vld):
        vld.write_block(5, b"a" * 4096)
        first = vld.imap.get(5)
        vld.write_block(5, b"b" * 4096)
        assert vld.freemap.run_is_free(first * 8, 8)
        assert first not in vld.reverse

    def test_one_scsi_charge_per_logical_request(self, vld):
        breakdown = vld.write_block(1, b"x" * 4096)
        assert breakdown.scsi == pytest.approx(ST19101.scsi_overhead)

    def test_trim_frees_space(self, vld):
        vld.write_block(2, b"x" * 4096)
        physical = vld.imap.get(2)
        vld.trim(2)
        assert vld.imap.get(2) is None
        assert vld.freemap.run_is_free(physical * 8, 8)
        data, _ = vld.read_block(2)
        assert data == bytes(4096)

    def test_random_sync_writes_cheap(self, vld, disk):
        """The headline property: synchronous random writes cost far less
        than the seek + half-rotation of update-in-place."""
        rng = random.Random(11)
        total = 0.0
        trials = 100
        for i in range(trials):
            lba = rng.randrange(vld.num_blocks)
            total += vld.write_block(lba, bytes([i % 251]) * 4096).total
        mean = total / trials
        half_rotation = disk.mechanics.rotation_time / 2
        assert mean < half_rotation  # in-place would pay this plus a seek

    def test_utilization_tracks_writes(self, vld):
        start = vld.utilization
        for lba in range(100):
            vld.write_block(lba, b"d" * 4096)
        assert vld.utilization > start

    def test_sequential_read_mostly_served_by_track_buffer(self, vld):
        """Even with map records interleaved among the data blocks, the
        full-track read-ahead fix (Section 4.2) keeps sequential reads
        cheap: most blocks come from the buffer, not the media."""
        for lba in range(32):
            vld.write_block(lba, bytes([lba]) * 4096)
        data, breakdown = vld.read_blocks(0, 32)
        assert data == b"".join(bytes([l]) * 4096 for l in range(32))
        # Positioning happens only on the handful of track-buffer misses.
        assert breakdown.locate < 3 * vld.disk.mechanics.rotation_time


class TestCrashRecovery:
    def _fill(self, vld, n=200, seed=5):
        rng = random.Random(seed)
        expected = {}
        for _ in range(n):
            lba = rng.randrange(vld.num_blocks)
            payload = bytes([rng.randrange(256)]) * 4096
            vld.write_block(lba, payload)
            expected[lba] = payload
        return expected

    def test_power_down_then_recover_uses_record(self, vld):
        expected = self._fill(vld)
        vld.power_down()
        vld.crash()
        outcome = vld.recover(timed=False)
        assert outcome.used_power_down_record
        assert not outcome.scanned
        for lba, payload in expected.items():
            data, _ = vld.read_block(lba)
            assert data == payload

    def test_crash_without_record_falls_back_to_scan(self, vld):
        expected = self._fill(vld)
        vld.crash()
        outcome = vld.recover(timed=False)
        assert outcome.scanned
        assert outcome.blocks_scanned > 0
        for lba, payload in expected.items():
            data, _ = vld.read_block(lba)
            assert data == payload

    def test_corrupt_power_down_record_forces_scan(self, vld):
        self._fill(vld, n=50)
        vld.power_down()
        vld.power_store.corrupt()
        vld.crash()
        outcome = vld.recover(timed=False)
        assert outcome.scanned

    def test_record_cleared_after_recovery(self, vld):
        self._fill(vld, n=20)
        vld.power_down()
        vld.crash()
        vld.recover(timed=False)
        record, _ = vld.power_store.read(timed=False)
        assert record is None  # Section 3.2: "clear it after recovery"

    def test_fast_recovery_vs_scan_recovery_cost(self, vld):
        """The virtual log's selling point: recovery from the tail record
        is much cheaper than scanning the disk."""
        self._fill(vld, n=100)
        vld.power_down()
        vld.crash()
        fast = vld.recover(timed=True)
        self._fill(vld, n=5)
        vld.crash()
        slow = vld.recover(timed=True)
        assert slow.scanned and not fast.scanned
        # Tail-record recovery reads only live map records (scattered, so
        # each costs a positioning); the scan reads the whole disk.  On
        # this ~22 MB slice that is a ~4-5x gap, and it grows linearly
        # with capacity.
        assert fast.elapsed < slow.elapsed / 3
        assert slow.blocks_scanned > 100 * fast.records_read

    def test_recovery_preserves_invariants_and_service(self, vld):
        expected = self._fill(vld, n=150)
        vld.power_down()
        vld.crash()
        vld.recover(timed=False)
        vld.vlog.check_invariants()
        # Space accounting must be consistent: every mapped block used.
        for lba, physical in vld.imap.items():
            assert not vld.freemap.run_is_free(physical * 8, 8)
        # And the device keeps working.
        vld.write_block(0, b"new!" + bytes(4092))
        data, _ = vld.read_block(0)
        assert data.startswith(b"new!")

    def test_fresh_device_recovery_is_noop(self, vld):
        outcome = vld.recover(timed=False)
        assert outcome.records_read == 0
        data, _ = vld.read_block(0)
        assert data == bytes(4096)

    def test_uncommitted_write_lost_but_older_data_safe(self, vld):
        """Atomicity: a crash between data write and map commit recovers
        the old contents (simulated via direct state surgery)."""
        vld.write_block(4, b"old" + bytes(4093))
        vld.power_down()
        # Simulate: new data written but map never committed -- the disk
        # image after power_down simply lacks the new version.
        vld.crash()
        vld.recover(timed=False)
        data, _ = vld.read_block(4)
        assert data.startswith(b"old")
