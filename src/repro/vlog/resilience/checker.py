"""``vlfsck``: an online invariant checker for the Virtual Log Disk.

Runs against a *quiescent* VLD (no host request in flight) and reports
violations instead of asserting, so the torture harness can collect and
attribute them.  Checks, cheapest first:

1. the virtual log's in-memory graph invariants (every live record except
   the tail has a live in-edge; the tail is youngest; edge sets agree);
2. map <-> log agreement: every map chunk with mapped entries has a live
   log record, and every live record's chunk is a known kind;
3. reverse-map bijection with the indirection map;
4. free-map agreement: the set of used sectors equals exactly what the
   mapped blocks + live records + reserved block + quarantine imply;
5. quarantine agreement between the free map and the resilience table.

``deep=True`` additionally reads every live block off the (quiescent)
disk image: data blocks must pass their sector checksums, and each live
record must parse and carry its chunk's current contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.vlog.entries import (
    COMMIT_CHUNK_BASE,
    QUARANTINE_CHUNK_BASE,
    MapRecord,
)


@dataclass
class Violation:
    """One broken invariant."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.kind}] {self.detail}"


@dataclass
class FsckReport:
    """Everything one ``vlfsck`` pass found."""

    violations: List[Violation] = field(default_factory=list)
    checked_records: int = 0
    checked_blocks: int = 0
    deep: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, kind: str, detail: str) -> None:
        self.violations.append(Violation(kind, detail))

    def summary(self) -> str:
        if self.ok:
            return (
                f"vlfsck clean ({self.checked_records} records, "
                f"{self.checked_blocks} data blocks"
                f"{', deep' if self.deep else ''})"
            )
        head = "; ".join(str(v) for v in self.violations[:5])
        more = len(self.violations) - 5
        return f"vlfsck: {len(self.violations)} violation(s): {head}" + (
            f" (+{more} more)" if more > 0 else ""
        )


def vlfsck(vld, deep: bool = False) -> FsckReport:
    """Check a quiescent :class:`VirtualLogDisk`; returns the report."""
    report = FsckReport(deep=deep)
    _check_vlog_graph(vld, report)
    _check_map_log_agreement(vld, report)
    _check_reverse_map(vld, report)
    _check_freemap(vld, report)
    _check_quarantine(vld, report)
    if deep:
        _check_on_disk(vld, report)
    return report


# ----------------------------------------------------------------------


def _check_vlog_graph(vld, report: FsckReport) -> None:
    for problem in vld.vlog.invariant_violations():
        report.add("vlog-graph", problem)


def _check_map_log_agreement(vld, report: FsckReport) -> None:
    imap = vld.imap
    for chunk_id in range(imap.num_chunks):
        mapped = any(
            e != 0xFFFFFFFF for e in imap.chunk_entries(chunk_id)
        )
        if mapped and vld.vlog.location_of(chunk_id) is None:
            report.add(
                "map-chunk-unlogged",
                f"chunk {chunk_id} has mapped entries but no live record",
            )
    for block in vld.vlog.live_blocks():
        chunk_id = vld.vlog.chunk_of_block(block)
        if chunk_id is None:
            continue
        if chunk_id >= COMMIT_CHUNK_BASE:
            continue
        if chunk_id >= QUARANTINE_CHUNK_BASE:
            if vld.resilience is None:
                report.add(
                    "quarantine-chunk-orphaned",
                    f"quarantine chunk {chunk_id} live without a "
                    "resilience layer",
                )
            continue
        if chunk_id >= imap.num_chunks:
            report.add(
                "record-chunk-range",
                f"live record at block {block} names unknown chunk "
                f"{chunk_id}",
            )


def _check_reverse_map(vld, report: FsckReport) -> None:
    expected = {}
    for lba, physical in vld.imap.items():
        if physical in expected:
            report.add(
                "map-aliased",
                f"physical block {physical} mapped by logical "
                f"{expected[physical]} and {lba}",
            )
            continue
        expected[physical] = lba
    if expected != vld.reverse:
        missing = sorted(set(expected) - set(vld.reverse))[:4]
        extra = sorted(set(vld.reverse) - set(expected))[:4]
        wrong = sorted(
            p
            for p in set(expected) & set(vld.reverse)
            if expected[p] != vld.reverse[p]
        )[:4]
        report.add(
            "reverse-map",
            f"reverse map desynchronised (missing={missing}, "
            f"extra={extra}, wrong={wrong})",
        )


def _expected_used_sectors(vld) -> set:
    spb = vld.sectors_per_block
    map_spb = vld.vlog.sectors_per_block
    used = set(
        range(
            vld.POWER_DOWN_BLOCK * spb, (vld.POWER_DOWN_BLOCK + 1) * spb
        )
    )
    for _lba, physical in vld.imap.items():
        used.update(range(physical * spb, (physical + 1) * spb))
    for record in vld.vlog.live_blocks():
        used.update(range(record * map_spb, (record + 1) * map_spb))
    used.update(vld.freemap.quarantined_sectors())
    return used


def _check_freemap(vld, report: FsckReport) -> None:
    expected = _expected_used_sectors(vld)
    mismatched: List[int] = []
    for sector in range(vld.disk.total_sectors):
        if vld.freemap.is_free(sector) == (sector in expected):
            mismatched.append(sector)
            if len(mismatched) > 8:
                break
    if mismatched:
        report.add(
            "freemap",
            f"free map disagrees with live state at sectors "
            f"{mismatched[:8]}"
            + ("..." if len(mismatched) > 8 else ""),
        )


def _check_quarantine(vld, report: FsckReport) -> None:
    if vld.resilience is None:
        return
    in_map = set(vld.freemap.quarantined_sectors())
    in_table = set(vld.resilience.quarantine.sectors)
    if in_map != in_table:
        report.add(
            "quarantine",
            f"free-map quarantine {sorted(in_map - in_table)[:4]} / "
            f"table {sorted(in_table - in_map)[:4]} disagree",
        )


def _check_on_disk(vld, report: FsckReport) -> None:
    disk = vld.disk
    if disk._data is None:
        report.add("deep-unavailable", "disk stores no data (timing-only)")
        return
    spb = vld.sectors_per_block
    checksums = (
        vld.resilience.checksums if vld.resilience is not None else None
    )
    for _lba, physical in vld.imap.items():
        raw = disk.peek(physical * spb, spb)
        report.checked_blocks += 1
        if checksums is not None:
            bad = checksums.verify(physical * spb, spb, raw)
            if bad:
                report.add(
                    "data-checksum",
                    f"physical block {physical} fails sector checksums "
                    f"{bad}",
                )
    map_spb = vld.vlog.sectors_per_block
    for block in vld.vlog.live_blocks():
        raw = disk.peek(block * map_spb, map_spb)
        report.checked_records += 1
        record = MapRecord.unpack(raw)
        if record is None:
            report.add(
                "record-unreadable",
                f"live record block {block} does not parse",
            )
            continue
        chunk_id = vld.vlog.chunk_of_block(block)
        if record.chunk_id != chunk_id:
            report.add(
                "record-chunk-mismatch",
                f"block {block} holds chunk {record.chunk_id}, log "
                f"expects {chunk_id}",
            )
            continue
        if chunk_id is not None and chunk_id < COMMIT_CHUNK_BASE:
            expected = vld._chunk_contents(chunk_id)
            if list(record.entries) != list(expected):
                report.add(
                    "record-stale",
                    f"live record for chunk {chunk_id} at block {block} "
                    "does not carry the chunk's current contents",
                )
