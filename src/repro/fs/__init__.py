"""Shared file system infrastructure.

Common pieces used by the UFS, LFS, and VLFS implementations: the abstract
file system API the workloads drive, path handling, the inode structure
(12 direct + 1 single-indirect + 1 double-indirect block pointers), and the
directory-file record format.
"""

from repro.fs.api import (
    FileSystem,
    FileStat,
    FileSystemError,
    FileNotFound,
    FileExists,
    NotADirectory,
    IsADirectory,
    DirectoryNotEmpty,
    NoSpace,
)
from repro.fs.path import split_path, validate_name
from repro.fs.inode import Inode, FileType, INODE_SIZE
from repro.fs.dirfile import DirectoryBlock

__all__ = [
    "FileSystem",
    "FileStat",
    "FileSystemError",
    "FileNotFound",
    "FileExists",
    "NotADirectory",
    "IsADirectory",
    "DirectoryNotEmpty",
    "NoSpace",
    "split_path",
    "validate_name",
    "Inode",
    "FileType",
    "INODE_SIZE",
    "DirectoryBlock",
]
