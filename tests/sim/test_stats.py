import pytest

from repro.sim.stats import COMPONENTS, Breakdown, LatencyRecorder


class TestBreakdown:
    def test_components_order_matches_figure9(self):
        assert COMPONENTS == ("scsi", "transfer", "locate", "other")

    def test_total_sums_components(self):
        b = Breakdown(scsi=1.0, transfer=2.0, locate=3.0, other=4.0)
        assert b.total == pytest.approx(10.0)

    def test_add_accumulates(self):
        a = Breakdown(scsi=1.0)
        b = Breakdown(scsi=0.5, locate=2.0)
        a.add(b)
        assert a.scsi == pytest.approx(1.5)
        assert a.locate == pytest.approx(2.0)

    def test_add_returns_self_for_chaining(self):
        a = Breakdown()
        assert a.add(Breakdown(other=1.0)) is a

    def test_charge_named_component(self):
        b = Breakdown()
        b.charge("locate", 0.003)
        assert b.locate == pytest.approx(0.003)

    def test_charge_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            Breakdown().charge("seek", 1.0)

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            Breakdown().charge("scsi", -1.0)

    def test_as_dict_roundtrip(self):
        b = Breakdown(scsi=1.0, other=2.0)
        assert b.as_dict() == {
            "scsi": 1.0, "transfer": 0.0, "locate": 0.0, "other": 2.0,
        }

    def test_copy_is_independent(self):
        a = Breakdown(scsi=1.0)
        c = a.copy()
        c.charge("scsi", 1.0)
        assert a.scsi == pytest.approx(1.0)

    def test_equality_is_component_wise(self):
        a = Breakdown(scsi=1.0, locate=2.0)
        assert a == Breakdown(scsi=1.0, locate=2.0)
        assert a != Breakdown(scsi=1.0, locate=2.5)
        assert a == a.copy()

    def test_equality_with_other_types(self):
        assert Breakdown() != "not a breakdown"
        assert Breakdown() != 0.0

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Breakdown())

    def test_isclose_tolerates_float_accumulation_order(self):
        a = Breakdown()
        for _ in range(10):
            a.charge("scsi", 0.1)
        b = Breakdown(scsi=1.0)
        assert a != b  # exact equality is strict...
        assert a.isclose(b)  # ...isclose is not

    def test_repr_shows_milliseconds(self):
        assert "scsi=1.000ms" in repr(Breakdown(scsi=0.001))


class TestLatencyRecorder:
    def test_empty_recorder_mean_zero(self):
        assert LatencyRecorder().mean() == 0.0

    def test_mean_over_records(self):
        r = LatencyRecorder()
        r.record(Breakdown(scsi=1.0))
        r.record(Breakdown(scsi=3.0))
        assert r.mean() == pytest.approx(2.0)
        assert r.count == 2

    def test_record_parts_convenience(self):
        r = LatencyRecorder()
        r.record_parts(locate=0.5, other=0.5)
        assert r.total_time == pytest.approx(1.0)

    def test_percentile_nearest_rank(self):
        r = LatencyRecorder()
        for v in (1.0, 2.0, 3.0, 4.0):
            r.record(Breakdown(other=v))
        assert r.percentile(0.5) == pytest.approx(2.0)
        assert r.percentile(1.0) == pytest.approx(4.0)
        assert r.percentile(0.0) == pytest.approx(1.0)

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(1.5)

    def test_component_fractions_sum_to_one(self):
        r = LatencyRecorder()
        r.record(Breakdown(scsi=1.0, transfer=1.0, locate=1.0, other=1.0))
        fractions = r.component_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["scsi"] == pytest.approx(0.25)

    def test_component_fractions_empty(self):
        fractions = LatencyRecorder().component_fractions()
        assert all(v == 0.0 for v in fractions.values())

    def test_merge_folds_samples(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.record(Breakdown(other=1.0))
        b.record(Breakdown(other=3.0))
        a.merge([b])
        assert a.count == 2
        assert a.mean() == pytest.approx(2.0)

    def test_reset_clears(self):
        r = LatencyRecorder()
        r.record(Breakdown(other=1.0))
        r.reset()
        assert r.count == 0
        assert r.total_time == 0.0

    def test_summary_is_readable(self):
        r = LatencyRecorder()
        r.record(Breakdown(other=0.001))
        text = r.summary("bench")
        assert "bench" in text
        assert "n=1" in text
