"""The request scheduler: policies, starvation bound, and the depth-1
byte-identity guarantee the figure pins rely on."""

import random

import pytest

from repro.blockdev.regular import RegularDisk
from repro.disk.disk import Disk
from repro.disk.specs import ST19101
from repro.sched.policies import (
    ElevatorPolicy,
    FIFOPolicy,
    SATFPolicy,
    make_policy,
)
from repro.sched.scheduler import DiskScheduler
from repro.vlog.vld import VirtualLogDisk


def _payload(tag: int, size: int = 4096) -> bytes:
    return bytes([tag % 251]) * size


class TestConstruction:
    def test_policy_by_name_and_instance(self):
        disk = Disk(ST19101, num_cylinders=1, store_data=False)
        assert isinstance(
            DiskScheduler(disk, "satf").policy, SATFPolicy
        )
        assert isinstance(
            DiskScheduler(disk, ElevatorPolicy()).policy, ElevatorPolicy
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("lifo")

    def test_invalid_depth_and_bound_rejected(self):
        disk = Disk(ST19101, num_cylinders=1, store_data=False)
        with pytest.raises(ValueError):
            DiskScheduler(disk, queue_depth=0)
        with pytest.raises(ValueError):
            DiskScheduler(disk, starvation_bound=0)


class TestDepthOneIdentity:
    """At queue_depth=1 every policy issues the identical disk call
    sequence the unscheduled seed code made directly."""

    @pytest.mark.parametrize("policy", ["fifo", "scan", "satf"])
    def test_raw_scheduler_matches_direct_disk(self, policy):
        rng = random.Random(11)
        ops = [
            (rng.randrange(ST19101.sectors_per_track * 4), rng.randrange(1, 9))
            for _ in range(120)
        ]
        direct = Disk(ST19101, num_cylinders=2, store_data=False)
        queued = Disk(ST19101, num_cylinders=2, store_data=False)
        scheduler = DiskScheduler(queued, policy, queue_depth=1)
        for i, (sector, count) in enumerate(ops):
            if i % 4 == 3:
                d1 = direct.read(sector, count)
                d2 = scheduler.read(sector, count)
                assert d1[1].as_dict() == d2[1].as_dict()
            else:
                b1 = direct.write(sector, count)
                scheduler.write(sector, count)
                b2 = scheduler.take_breakdown()
                assert b1.as_dict() == b2.as_dict()
            assert direct.clock.now == queued.clock.now
        assert scheduler.max_outstanding == 1
        assert scheduler.serviced == len(ops)

    @staticmethod
    def _drive_vld(queue_depth: int, sched: str):
        disk = Disk(ST19101, num_cylinders=2)
        vld = VirtualLogDisk(disk, queue_depth=queue_depth, sched=sched)
        rng = random.Random(7)
        total = 0.0
        reads = []
        for _ in range(60):
            action = rng.random()
            lba = rng.randrange(64)
            if action < 0.55:
                total += vld.write_block(lba, _payload(lba)).total
            elif action < 0.8:
                data, cost = vld.read_block(lba)
                reads.append(data)
                total += cost.total
            elif action < 0.9:
                total += vld.trim(lba).total
            else:
                vld.idle(0.05)
        vld.power_down()
        vld.crash()
        outcome = vld.recover()
        total += outcome.breakdown.total
        return disk.clock.now, total, reads, list(vld.imap.items())

    @pytest.mark.parametrize("sched", ["scan", "satf"])
    def test_vld_depth_one_identical_across_policies(self, sched):
        baseline = self._drive_vld(1, "fifo")
        other = self._drive_vld(1, sched)
        assert other[0] == baseline[0]  # simulated clock, bit-for-bit
        assert other[1] == baseline[1]  # summed breakdowns
        assert other[2] == baseline[2]  # every byte read
        assert other[3] == baseline[3]  # final mapping


class TestPolicies:
    def test_fifo_services_in_arrival_order(self):
        disk = Disk(ST19101, num_cylinders=4, store_data=False)
        scheduler = DiskScheduler(disk, "fifo", queue_depth=8)
        per_cyl = disk.geometry.sectors_per_cylinder
        reqs = [scheduler.write(c * per_cyl) for c in (3, 0, 2, 1)]
        scheduler.drain()
        order = sorted(reqs, key=lambda r: r.completion)
        assert [r.seq for r in order] == [0, 1, 2, 3]

    def test_elevator_sweeps_ascending_then_reverses(self):
        disk = Disk(ST19101, num_cylinders=8, store_data=False)
        scheduler = DiskScheduler(
            disk, "scan", queue_depth=8, starvation_bound=100
        )
        per_cyl = disk.geometry.sectors_per_cylinder
        reqs = {c: scheduler.write(c * per_cyl) for c in (5, 1, 3, 7)}
        scheduler.drain()
        # Head starts at cylinder 0 sweeping up: 1, 3, 5, 7.
        order = sorted(reqs, key=lambda c: reqs[c].completion)
        assert order == [1, 3, 5, 7]

    def test_satf_prefers_cheap_rotational_target(self):
        disk = Disk(ST19101, num_cylinders=1, store_data=False)
        scheduler = DiskScheduler(
            disk, "satf", queue_depth=8, starvation_bound=100
        )
        # Same track: one sector just behind the head (a near-full
        # revolution away), one comfortably ahead.  FIFO would service
        # submission order; SATF takes the rotationally-ahead sector.
        n = disk.geometry.sectors_per_track
        slot = int(disk.mechanics.rotational_slot(disk.clock.now))
        behind = scheduler.write((slot - 2) % n)
        ahead = scheduler.write((slot + n // 4) % n)
        scheduler.drain()
        assert ahead.completion < behind.completion

    def test_fifo_policy_instance_is_stateless(self):
        assert FIFOPolicy().pick([1, 2, 3], None) == 1


class TestStarvationBound:
    def test_passed_over_request_bounded(self):
        disk = Disk(ST19101, num_cylinders=8, store_data=False)
        bound = 5
        scheduler = DiskScheduler(
            disk, "satf", queue_depth=4, starvation_bound=bound
        )
        per_cyl = disk.geometry.sectors_per_cylinder
        # One distant victim, then a hostile stream of near requests that
        # SATF would always prefer.
        victim = scheduler.write(7 * per_cyl)
        serviced = []
        for i in range(40):
            serviced.append(scheduler.write((i * 8) % per_cyl))
        scheduler.drain()
        assert victim.done
        assert victim.passes <= bound
        assert all(r.passes <= bound for r in serviced)
        # The bound actually bit: the victim was passed over at least once.
        assert victim.passes > 0

    def test_every_serviced_request_within_bound_under_all_policies(self):
        rng = random.Random(3)
        for policy in ("fifo", "scan", "satf"):
            disk = Disk(ST19101, num_cylinders=8, store_data=False)
            scheduler = DiskScheduler(
                disk, policy, queue_depth=8, starvation_bound=6
            )
            reqs = []
            for _ in range(100):
                sector = rng.randrange(disk.total_sectors - 8)
                reqs.append(scheduler.write(sector, 1 + rng.randrange(8)))
            scheduler.drain()
            assert all(r.done for r in reqs)
            assert max(r.passes for r in reqs) <= 6


class TestQueueMechanics:
    def test_queue_builds_to_depth_then_services(self):
        disk = Disk(ST19101, num_cylinders=2, store_data=False)
        scheduler = DiskScheduler(disk, "fifo", queue_depth=4)
        for i in range(3):
            scheduler.write(i * 8)
        assert scheduler.outstanding == 3
        assert scheduler.serviced == 0
        scheduler.write(3 * 8)  # reaches depth: one service fires
        assert scheduler.outstanding == 3
        assert scheduler.serviced == 1
        breakdown = scheduler.drain()
        assert scheduler.outstanding == 0
        assert scheduler.serviced == 4
        assert breakdown.total > 0.0

    def test_read_waits_for_its_own_completion(self):
        disk = Disk(ST19101, num_cylinders=2)
        scheduler = DiskScheduler(disk, "fifo", queue_depth=4)
        payload = bytes(512)
        scheduler.write(40, 1, payload)
        data, breakdown = scheduler.read(40, 1)
        assert data == payload
        assert scheduler.outstanding == 0  # FIFO drained the write first
        assert breakdown.total > 0.0

    def test_discard_pending_drops_unserviced_writes(self):
        disk = Disk(ST19101, num_cylinders=2, store_data=False)
        scheduler = DiskScheduler(disk, "fifo", queue_depth=8)
        before = disk.clock.now
        for i in range(5):
            scheduler.write(i * 8)
        dropped = scheduler.discard_pending()
        assert len(dropped) == 5
        assert scheduler.outstanding == 0
        assert disk.clock.now == before  # nothing reached the media

    def test_service_one_with_empty_queue_raises(self):
        disk = Disk(ST19101, num_cylinders=1, store_data=False)
        with pytest.raises(RuntimeError):
            DiskScheduler(disk).service_one()

    def test_histograms_record_service_and_response(self):
        disk = Disk(ST19101, num_cylinders=2, store_data=False)
        scheduler = DiskScheduler(disk, "fifo", queue_depth=4)
        for i in range(8):
            scheduler.write(i * 64)
        scheduler.drain()
        assert scheduler.service_times.count == 8
        assert scheduler.response_times.count == 8
        pct = scheduler.service_times.percentiles()
        assert 0.0 < pct["p50"] <= pct["p95"] <= pct["p99"]
        # Queued requests wait: response >= service on average.
        assert scheduler.response_times.mean() >= scheduler.service_times.mean()


class TestRegularDiskQueue:
    def test_depth_four_overlaps_and_idle_drains(self):
        disk = Disk(ST19101, num_cylinders=2)
        device = RegularDisk(disk, queue_depth=4, sched="satf")
        for lba in range(6):
            device.write_block(lba * 16, _payload(lba))
        assert device.scheduler.outstanding == 3  # steady state: depth-1
        device.idle(0.01)
        assert device.scheduler.outstanding == 0

    def test_read_block_flushes_queued_write_of_same_block(self):
        disk = Disk(ST19101, num_cylinders=2)
        device = RegularDisk(disk, queue_depth=4)
        device.write_block(5, _payload(9))
        assert device.scheduler.outstanding == 1
        data, _ = device.read_block(5)
        assert data == _payload(9)  # FIFO services the write first


class TestSlowWindow:
    """The scheduler-level fail-slow hook (multihost's shard_slow)."""

    def build(self):
        disk = Disk(ST19101, num_cylinders=2, store_data=False)
        return disk, DiskScheduler(disk, "fifo")

    def test_validation(self):
        _, scheduler = self.build()
        with pytest.raises(ValueError, match="factor"):
            scheduler.set_slow_window(0.5)
        with pytest.raises(ValueError, match="after_ops"):
            scheduler.set_slow_window(2.0, after_ops=-1)
        with pytest.raises(ValueError, match="duration"):
            scheduler.set_slow_window(2.0, duration_ops=0)

    def test_only_window_services_are_stretched(self):
        _, scheduler = self.build()
        scheduler.set_slow_window(4.0, after_ops=2, duration_ops=3)
        for i in range(8):
            scheduler.write(i * 16)
        scheduler.drain()
        # Services 3, 4, 5 fall in the window.
        assert scheduler.ops_slowed == 3
        assert scheduler.slow_extra_seconds > 0.0
        assert scheduler.slow_span is not None
        start, end = scheduler.slow_span
        assert start < end

    def test_surplus_lands_on_the_disk_clock(self):
        disk_a, plain = self.build()
        disk_b, slowed = self.build()
        slowed.set_slow_window(5.0)
        for i in range(4):
            plain.write(i * 16)
            slowed.write(i * 16)
        plain.drain()
        slowed.drain()
        # The slowed bank genuinely ran longer, and every completion
        # stamp includes its surplus (the last one IS the final clock).
        assert disk_b.clock.now > disk_a.clock.now
        assert slowed.slow_extra_seconds > 0.0
        assert slowed.completion_times[-1] == disk_b.clock.now

    def test_completion_times_cover_every_service(self):
        _, scheduler = self.build()
        for i in range(5):
            scheduler.write(i * 16)
        scheduler.drain()
        assert len(scheduler.completion_times) == 5
        assert scheduler.completion_times == sorted(
            scheduler.completion_times
        )

    def test_no_window_means_no_slow_state(self):
        _, scheduler = self.build()
        for i in range(4):
            scheduler.write(i * 16)
        scheduler.drain()
        assert scheduler.ops_slowed == 0
        assert scheduler.slow_extra_seconds == 0.0
        assert scheduler.slow_span is None
