"""The small-file benchmark (Figure 6).

"We create 1500 1 KB files, read them back after a cache flush, and delete
them.  The benchmark is run on empty disks."  (Section 5.1, after the
original LFS and Logical Disk studies.)

Per-phase elapsed simulated time is returned; the harness normalizes each
stack's phases to UFS-on-regular-disk as the paper's Figure 6 does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.api import FileSystem


@dataclass
class SmallFileResult:
    create_seconds: float
    read_seconds: float
    delete_seconds: float
    num_files: int

    def phase(self, name: str) -> float:
        return {
            "create": self.create_seconds,
            "read": self.read_seconds,
            "delete": self.delete_seconds,
        }[name]


def run_small_file(
    fs: FileSystem,
    num_files: int = 1500,
    file_bytes: int = 1024,
    payload: bytes = b"",
    verify: bool = False,
) -> SmallFileResult:
    """Create / read / delete ``num_files`` small files in the root."""
    clock = fs.clock  # every implementation exposes its clock
    data = payload or bytes(file_bytes)
    names = [f"/small{i:05d}" for i in range(num_files)]

    start = clock.now
    for name in names:
        fs.create(name)
        fs.write(name, 0, data)
    create_seconds = clock.now - start

    fs.sync()
    fs.drop_caches()

    start = clock.now
    for name in names:
        content, _ = fs.read(name, 0, file_bytes)
        if verify and content != data:
            raise AssertionError(f"read-back mismatch for {name}")
    read_seconds = clock.now - start

    start = clock.now
    for name in names:
        fs.unlink(name)
    delete_seconds = clock.now - start

    return SmallFileResult(
        create_seconds=create_seconds,
        read_seconds=read_seconds,
        delete_seconds=delete_seconds,
        num_files=num_files,
    )
