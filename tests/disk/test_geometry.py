import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.specs import HP97560, ST19101


@pytest.fixture
def geo():
    return DiskGeometry(ST19101)  # 11 simulated cylinders


class TestAddressing:
    def test_total_sectors(self, geo):
        assert geo.total_sectors == 11 * 16 * 256

    def test_capacity(self, geo):
        assert geo.capacity_bytes == geo.total_sectors * 512

    def test_compose_decompose_roundtrip(self, geo):
        for sector in range(0, geo.total_sectors, 1013):
            cylinder, head, sect = geo.decompose(sector)
            assert geo.compose(cylinder, head, sect) == sector

    def test_linear_order(self, geo):
        # Conventional order: sectors, then heads, then cylinders.
        assert geo.decompose(0) == (0, 0, 0)
        assert geo.decompose(255) == (0, 0, 255)
        assert geo.decompose(256) == (0, 1, 0)
        assert geo.decompose(256 * 16) == (1, 0, 0)

    def test_track_start(self, geo):
        assert geo.track_start(2, 3) == 2 * 256 * 16 + 3 * 256

    def test_out_of_range_sector(self, geo):
        with pytest.raises(ValueError):
            geo.decompose(geo.total_sectors)
        with pytest.raises(ValueError):
            geo.decompose(-1)

    def test_out_of_range_track(self, geo):
        with pytest.raises(ValueError):
            geo.compose(11, 0, 0)
        with pytest.raises(ValueError):
            geo.compose(0, 16, 0)
        with pytest.raises(ValueError):
            geo.compose(0, 0, 256)

    def test_cannot_exceed_drive_cylinders(self):
        with pytest.raises(ValueError):
            DiskGeometry(ST19101, num_cylinders=ST19101.num_cylinders + 1)

    def test_full_drive_geometry(self):
        geo = DiskGeometry(HP97560, num_cylinders=HP97560.num_cylinders)
        assert geo.total_sectors == 1962 * 19 * 72


class TestSkew:
    def test_skew_zero_on_first_track(self):
        geo = DiskGeometry(ST19101)
        assert geo.skew_offset(0, 0) == 0

    def test_track_skew_applied_per_head(self):
        geo = DiskGeometry(ST19101)
        expected = ST19101.track_skew_sectors % 256
        assert geo.skew_offset(0, 1) == expected

    def test_cylinder_skew_applied_per_cylinder(self):
        geo = DiskGeometry(ST19101)
        expected = ST19101.cylinder_skew_sectors % 256
        assert geo.skew_offset(1, 0) == expected

    def test_angle_inverse(self):
        geo = DiskGeometry(HP97560)
        for cylinder, head in ((0, 0), (3, 7), (35, 18)):
            for sect in (0, 1, 71):
                slot = geo.angle_of(cylinder, head, sect)
                assert geo.sector_at_angle(cylinder, head, slot) == sect

    def test_sequential_across_track_boundary_is_staggered(self):
        # The first sector of the next track must start a bit after the
        # last sector of the previous one, angularly.
        geo = DiskGeometry(ST19101)
        end_angle = geo.angle_of(0, 0, 255)
        next_angle = geo.angle_of(0, 1, 0)
        gap = (next_angle - end_angle) % 256
        switch_slots = ST19101.head_switch_time / ST19101.sector_time
        assert 0 < gap - 1 <= switch_slots + 2  # ceil plus one guard slot
